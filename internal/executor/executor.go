// Package executor runs a hyperparameter tuning job end-to-end over the
// (simulated) cloud: it is RubberBand's driver process (§5), comprising
// the scheduler control loop that starts, pauses, migrates and terminates
// trials, coordinates stage synchronization barriers, requests cluster
// scaling per the allocation plan, and realizes worker placement through
// the placement controller.
//
// The executor is real control-plane code — every scheduling decision
// path executes — with only training latency and the passage of time
// simulated (package model, package vclock). Its measured JCT and cost
// are the "real" columns of the paper's Table 2, which the simulator's
// predictions are validated against.
package executor

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/model"
	"repro/internal/placement"
	"repro/internal/replan"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/trial"
	"repro/internal/vclock"
)

// Config parameterizes one end-to-end run.
type Config struct {
	// Spec is the declarative experiment structure.
	Spec *spec.ExperimentSpec
	// Plan is the per-stage GPU allocation to execute.
	Plan sim.Plan
	// Model and Batch define the training workload.
	Model *model.Model
	Batch int
	// Configs are the sampled hyperparameter configurations, one per
	// initial trial (length must be at least Spec.TotalTrials()).
	Configs []searchspace.Config
	// Provider and Cluster are the cloud substrate. Clock is the shared
	// virtual clock; RNG drives training noise and metric observation.
	Provider *cloud.Provider
	Cluster  *cluster.Manager
	Clock    *vclock.Clock
	RNG      *stats.RNG
	// DisablePlacement scatters each trial's workers across the maximum
	// number of nodes instead of co-locating them — the Table 1 ablation
	// baseline.
	DisablePlacement bool
	// RestoreSeconds is the latency of restoring a checkpoint into a
	// freshly placed worker gang at stage transitions.
	RestoreSeconds float64
	// Trace, if non-nil, records execution events.
	Trace *trace.Recorder
	// LatencyScale, if non-nil, multiplies every sampled iteration
	// latency by its value at the iteration's start instant — the chaos
	// harness's drift-injection hook. It must be a pure function of
	// virtual time (the scaling is applied after the RNG draw, so
	// enabling drift never shifts the random stream). Nil means 1.
	LatencyScale func(now vclock.Time) float64
	// Replan, if non-nil, is the online replanning controller: observed
	// iteration latencies and provisioning makespans are fed into its
	// drift detector, and on trigger (or preemption) the remaining plan
	// is recompiled and spliced in at the next stage boundary.
	Replan *replan.Controller
	// StageGate, if non-nil, is consulted at every stage boundary before
	// the cluster is sized: it receives the stage index and the live
	// plan's allocation and returns the GPU grant the stage actually runs
	// with. The grant is clamped to [1, planned] (1 GPU still makes
	// progress via queued trial waves) and spliced into the live plan, so
	// schedule rows and FinalPlan report what actually ran. The
	// cross-experiment arbiter in internal/serve uses this to reallocate
	// a shared cluster across jobs. Mutually exclusive with Replan: both
	// rewrite the live plan and their composition is undefined.
	StageGate func(stage, planned int) int
}

func (c *Config) validate() error {
	switch {
	case c.Spec == nil:
		return fmt.Errorf("executor: nil spec")
	case c.Model == nil:
		return fmt.Errorf("executor: nil model")
	case c.Provider == nil || c.Cluster == nil || c.Clock == nil || c.RNG == nil:
		return fmt.Errorf("executor: nil substrate component")
	case c.Batch < 1:
		return fmt.Errorf("executor: batch %d", c.Batch)
	case c.RestoreSeconds < 0:
		return fmt.Errorf("executor: negative restore latency")
	case c.StageGate != nil && c.Replan != nil:
		return fmt.Errorf("executor: StageGate and Replan both set")
	}
	if err := c.Spec.Validate(); err != nil {
		return err
	}
	if err := c.Plan.Validate(c.Spec.NumStages()); err != nil {
		return err
	}
	if len(c.Configs) < c.Spec.TotalTrials() {
		return fmt.Errorf("executor: %d configs for %d trials", len(c.Configs), c.Spec.TotalTrials())
	}
	return nil
}

// StageRow summarizes one executed stage — the rows of Table 3.
type StageRow struct {
	Stage        int
	IterStart    int // cumulative iterations at stage start
	IterEnd      int // cumulative iterations at stage end
	Trials       int
	GPUsPerTrial int
	ClusterNodes int
	Start, End   vclock.Time
	// Cost is the realized billing accrued between the previous barrier
	// and this stage's barrier (provisioning included).
	Cost float64
}

// Result is the outcome of an end-to-end run.
type Result struct {
	// JCT is the wall-clock (virtual) job completion time in seconds.
	JCT float64
	// Cost is the total billed cost (compute + data ingress).
	Cost float64
	// BestTrial and BestAccuracy identify the winning configuration.
	BestTrial    trial.ID
	BestAccuracy float64
	BestConfig   searchspace.Config
	// Schedule is the realized per-stage schedule.
	Schedule []StageRow
	// Utilization is busy GPU-seconds divided by provisioned
	// GPU-seconds.
	Utilization float64
	// Preemptions is the number of cluster nodes lost to spot
	// reclamation during the run.
	Preemptions int
	// Trials exposes the final trial objects for inspection.
	Trials []*trial.Trial
	// Replans is the ordered list of replanning decisions taken during
	// the run (empty without a replan controller).
	Replans []replan.Decision
	// FinalPlan is the plan actually executed: the configured plan with
	// every adopted replan spliced in. Equal to the input plan when no
	// replan was adopted.
	FinalPlan sim.Plan
}

// run carries the mutable state of one execution.
type run struct {
	cfg    Config
	tr     *trace.Recorder
	trials []*trial.Trial
	ctrl   *placement.Controller
	store  *trial.Store

	stage     int
	need      int // node target of the current stage
	plan      placement.Plan
	nodeByID  map[cluster.NodeID]*cluster.Node
	remaining int
	queue     []trial.ID
	stageSet  []trial.ID // trials participating in the current stage
	// soa is the dense per-trial scheduler state (allocations, iteration
	// budgets, barrier marks, restart generations).
	soa trialSoA
	// dispID is the run's opcode dispatcher on the shared clock: the
	// training hot loop schedules (opcode, trial, gen) events instead of
	// closures, so steady-state iteration events allocate nothing.
	dispID vclock.DispatchID
	// pendingRestart holds preempted trials (and their per-trial
	// allocations) awaiting replacement capacity.
	pendingRestart []restartEntry
	// preemptions counts nodes lost during the run.
	preemptions int

	// execPlan is the live plan: a clone of cfg.Plan that adopted
	// replans splice new tails into. The executor never reads
	// cfg.Plan.Alloc after Start so the caller's copy stays pristine.
	execPlan sim.Plan
	// replans accumulates the controller's decisions in order.
	replans []replan.Decision
	// replanAdopted marks that at least one replan changed the plan;
	// subsequent stage starts annotate their placement churn.
	replanAdopted bool
	// scaledUp/scaleReqAt track an outstanding scale-up request so its
	// realized provisioning makespan can be fed to the drift detector.
	scaledUp   bool
	scaleReqAt vclock.Time

	rows []StageRow
	// costAtLastBarrier tracks cumulative billing for per-stage
	// attribution.
	costAtLastBarrier float64
	done              bool
	finishedAt        vclock.Time
	err               error
}

// restartEntry is one preempted trial queued for recovery.
type restartEntry struct {
	id    trial.ID
	alloc int
}

// Opcodes for the run's event dispatcher — the dag.Program compilation
// pattern applied to the training hot loop. Every steady-state event a
// trial schedules is one of these, carrying (trial, generation) packed
// into the first operand; firing one goes through vclock's zero-alloc
// dispatch path instead of a per-event closure.
const (
	// opBegin starts (or resumes) a trial's iteration loop after the
	// checkpoint-restore latency.
	opBegin uint8 = iota
	// opIterEnd completes one training iteration; its second operand
	// carries the iteration's sampled duration as IEEE-754 bits.
	opIterEnd
)

// packTrial packs a trial ID and its restart generation into one opcode
// operand.
func packTrial(id trial.ID, gen uint32) int64 {
	return int64(uint32(id)) | int64(gen)<<32
}

// dispatch is the run's opcode handler. Stale events — scheduled under
// a generation the trial has since restarted past — return without
// effect, exactly like the closure-generation checks they replace.
func (r *run) dispatch(op uint8, a, b int64) {
	id := trial.ID(uint32(a))
	gen := uint32(uint64(a) >> 32)
	switch op {
	case opBegin:
		if r.soa.gen[id] != gen {
			return // preempted before training began
		}
		r.runIteration(id)
	case opIterEnd:
		if r.err != nil {
			return
		}
		if r.soa.gen[id] != gen {
			return // stale: the trial restarted after a preemption
		}
		r.iterEnd(id, math.Float64frombits(uint64(b)))
	}
}

// Job is a started execution. Several jobs can share one virtual clock
// (each with its own cluster manager and provider accounting), enabling
// concurrent multi-job execution such as Hyperband's bracket collection.
type Job struct {
	r *run
}

// Start validates the configuration and schedules the job's first stage
// on the virtual clock without driving it. The caller advances the shared
// clock (typically via Wait or vclock.Clock.RunUntil) until Done.
func Start(cfg Config) (*Job, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	tr := cfg.Trace
	if tr == nil {
		// Always keep an internal recorder so utilization accounting
		// works even when the caller doesn't want the event log.
		tr = trace.New()
	}
	r := &run{
		cfg:      cfg,
		tr:       tr,
		ctrl:     placement.NewController(cfg.Cluster.GPUsPerNode()),
		store:    trial.NewStore(),
		execPlan: cfg.Plan.Clone(),
	}
	r.soa.init(cfg.Spec.TotalTrials())
	for i := 0; i < cfg.Spec.TotalTrials(); i++ {
		r.trials = append(r.trials, trial.New(trial.ID(i), cfg.Configs[i]))
	}
	r.dispID = cfg.Clock.RegisterDispatcher(r.dispatch)
	cfg.Cluster.SetPreemptionHandler(r.onPreemption)
	r.startStage(0)
	return &Job{r: r}, nil
}

// Done reports whether the job has completed (successfully or not).
func (j *Job) Done() bool { return j.r.done || j.r.err != nil }

// Stage returns the index of the stage currently executing (the final
// stage after completion).
func (j *Job) Stage() int { return j.r.stage }

// CurrentPlan returns a clone of the live execution plan — the
// configured plan with every adopted replan spliced in so far.
func (j *Job) CurrentPlan() sim.Plan { return j.r.execPlan.Clone() }

// Trials returns the job's trial objects in trial-ID order. Callers must
// treat them as read-only; control-plane snapshots read their state.
func (j *Job) Trials() []*trial.Trial { return j.r.trials }

// StateFold returns a fingerprint of the scheduler's dense per-trial
// state (allocations, iteration budgets, barrier marks, restart
// generations). Journal snapshots capture it so crash recovery verifies
// the re-executed scheduler — not just trial-visible state — converged
// to the original run.
func (j *Job) StateFold() uint64 { return j.r.soa.fold() }

// Result returns the realized result once the job is done.
func (j *Job) Result() (*Result, error) {
	if j.r.err != nil {
		return nil, j.r.err
	}
	if !j.r.done {
		return nil, fmt.Errorf("executor: job still running (stage %d)", j.r.stage)
	}
	return j.r.buildResult(), nil
}

// Run executes the job to completion in virtual time and returns the
// realized result.
func Run(cfg Config) (*Result, error) {
	j, err := Start(cfg)
	if err != nil {
		return nil, err
	}
	cfg.Clock.RunUntil(j.Done)
	if !j.Done() {
		return nil, fmt.Errorf("executor: event queue drained before completion (stage %d)", j.r.stage)
	}
	return j.Result()
}

// fail aborts the run.
func (r *run) fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// survivors returns trials eligible for the given stage: Pending before
// stage 0, Paused afterwards.
func (r *run) survivors() []*trial.Trial {
	var out []*trial.Trial
	for _, t := range r.trials {
		if t.State() == trial.Pending || t.State() == trial.Paused {
			out = append(out, t)
		}
	}
	return out
}

// startStage scales the cluster for stage i and begins training when the
// nodes are ready.
func (r *run) startStage(i int) {
	r.stage = i
	st := r.cfg.Spec.Stage(i)
	if gate := r.cfg.StageGate; gate != nil {
		// Stage-boundary arbitration: the gate's grant replaces the
		// planned allocation in the live plan before any sizing math, so
		// every downstream reader (gang shapes, schedule rows, FinalPlan)
		// sees the granted value.
		planned := r.execPlan.Alloc[i]
		grant := gate(i, planned)
		if grant < 1 {
			grant = 1
		}
		if grant > planned {
			grant = planned
		}
		r.execPlan.Alloc[i] = grant
	}
	alloc := r.execPlan.Alloc[i]
	gpn := r.cfg.Cluster.GPUsPerNode()

	var need int
	if alloc >= st.Trials {
		need = placement.NodesNeeded(st.Trials, alloc/st.Trials, gpn)
	} else {
		need = placement.NodesNeeded(alloc, 1, gpn)
	}

	r.need = need
	now := r.cfg.Clock.Now()
	if cur := r.cfg.Cluster.Size(); cur > need {
		// Bin-pack-then-drain: release the emptiest nodes first. At a
		// stage boundary all trials are paused (no live placements), so
		// this releases the newest nodes deterministically.
		order := r.ctrl.DrainOrder(r.cfg.Cluster.Nodes())
		for _, id := range order[:cur-need] {
			if err := r.cfg.Cluster.Release(id); err != nil {
				r.fail(err)
				return
			}
		}
		r.tr.Record(now, trace.KindScaleDown, i, -1, fmt.Sprintf("to %d nodes", need))
		r.scaledUp = false
	} else if cur < need {
		r.cfg.Cluster.ScaleUpTo(need)
		r.tr.Record(now, trace.KindScaleUp, i, -1, fmt.Sprintf("to %d nodes", need))
		r.scaledUp = true
		r.scaleReqAt = now
	} else {
		r.scaledUp = false
	}
	r.cfg.Cluster.WhenSize(need, func() { r.beginTraining() })
}

// beginTraining places and starts the stage's trials once capacity is
// ready.
func (r *run) beginTraining() {
	if r.err != nil {
		return
	}
	st := r.cfg.Spec.Stage(r.stage)
	alloc := r.execPlan.Alloc[r.stage]
	if rc := r.cfg.Replan; rc != nil && r.scaledUp {
		rc.ObserveProvision(float64(r.cfg.Clock.Now() - r.scaleReqAt))
		r.scaledUp = false
	}
	surv := r.survivors()
	if len(surv) != st.Trials {
		r.fail(fmt.Errorf("executor: stage %d has %d survivors, spec wants %d", r.stage, len(surv), st.Trials))
		return
	}

	nodes := r.cfg.Cluster.Nodes()
	r.nodeByID = make(map[cluster.NodeID]*cluster.Node, len(nodes))
	for _, n := range nodes {
		r.nodeByID[n.ID] = n
	}

	per := sim.GPUsPerTrial(alloc, st.Trials)
	runnable := surv
	r.queue = nil
	if alloc < st.Trials {
		runnable = surv[:alloc]
		for _, t := range surv[alloc:] {
			r.queue = append(r.queue, t.ID())
		}
	}

	r.stageSet = nil
	r.soa.resetStage()
	r.pendingRestart = nil
	for _, t := range surv {
		r.stageSet = append(r.stageSet, t.ID())
	}
	for _, t := range runnable {
		r.soa.setAlloc(t.ID(), per)
	}

	prev := r.plan
	if err := r.place(); err != nil {
		r.fail(err)
		return
	}

	r.remaining = st.Trials
	start := r.cfg.Clock.Now()
	r.rows = append(r.rows, StageRow{
		Stage:        r.stage,
		IterStart:    r.cumItersBefore(r.stage),
		IterEnd:      r.cumItersBefore(r.stage) + st.Iters,
		Trials:       st.Trials,
		GPUsPerTrial: per,
		ClusterNodes: r.cfg.Cluster.Size(),
		Start:        start,
	})
	note := fmt.Sprintf("%d trials x %d iters @ %d GPUs/trial", st.Trials, st.Iters, per)
	if r.replanAdopted {
		// Annotate the migration churn a spliced plan induced. Notes are
		// excluded from run digests, so the annotation cannot perturb
		// replay or worker-invariance checks.
		note += fmt.Sprintf(", %d gang(s) moved", placement.Moves(prev, r.plan))
	}
	r.tr.Record(start, trace.KindStageStart, r.stage, -1, note)

	for _, t := range runnable {
		r.startTrial(t, st.Iters, r.stage > 0)
	}
}

// cumItersBefore returns the cumulative iterations a survivor has executed
// before the given stage.
func (r *run) cumItersBefore(stage int) int {
	total := 0
	for i := 0; i < stage; i++ {
		total += r.cfg.Spec.Stage(i).Iters
	}
	return total
}

// place computes the placement for the current allocs, either through the
// placement controller (co-locating) or by deliberate scattering (the
// ablation baseline).
func (r *run) place() error {
	allocs := r.allocsMap()
	if r.cfg.DisablePlacement {
		r.plan = scatter(allocs, r.cfg.Cluster.Nodes(), r.plan)
		if r.plan == nil {
			return fmt.Errorf("executor: scatter placement failed")
		}
		return nil
	}
	plan, err := r.ctrl.Update(allocs, r.cfg.Cluster.Nodes())
	if err != nil {
		return err
	}
	r.plan = plan
	return nil
}

// scatter assigns GPUs one at a time to the node with the most free
// capacity — a worst-fit spread that models a locality-unaware scheduler.
// Trials already placed in prev keep their gangs when the allocation is
// unchanged and every node still has the capacity: a slot hand-off or a
// recovery re-place must not teleport a running gang to different GPUs
// mid-iteration, or the freed-looking GPUs get double-booked (the same
// preservation contract as placement.Controller.Update).
func scatter(allocs map[placement.TrialID]int, nodes []*cluster.Node, prev placement.Plan) placement.Plan {
	free := make(map[cluster.NodeID]int, len(nodes))
	for _, n := range nodes {
		free[n.ID] = n.GPUs
	}
	ids := make([]placement.TrialID, 0, len(allocs))
	for t := range allocs {
		ids = append(ids, t)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	plan := make(placement.Plan, len(allocs))
	for _, t := range ids {
		asg, ok := prev[t]
		if !ok || asg.GPUs() != allocs[t] {
			continue
		}
		for nid, g := range asg {
			if free[nid] < g {
				ok = false
			}
		}
		if !ok {
			continue // a gang node vanished (preemption); re-place below
		}
		kept := make(placement.Assignment, len(asg))
		for nid, g := range asg {
			free[nid] -= g
			kept[nid] = g
		}
		plan[t] = kept
	}
	for _, t := range ids {
		if _, done := plan[t]; done {
			continue
		}
		asg := make(placement.Assignment)
		for g := 0; g < allocs[t]; g++ {
			best := cluster.NodeID(-1)
			bestFree := -1
			for _, n := range nodes {
				if free[n.ID] > bestFree {
					best, bestFree = n.ID, free[n.ID]
				}
			}
			if bestFree < 1 {
				return nil
			}
			free[best]--
			asg[best]++
		}
		plan[t] = asg
	}
	return plan
}

// startTrial starts (or resumes) a trial for the current stage and
// schedules its iterations. withRestore adds the checkpoint-fetch latency
// (stage migrations and preemption recoveries).
func (r *run) startTrial(t *trial.Trial, iters int, withRestore bool) {
	asg := r.plan[placement.TrialID(t.ID())]
	gpus, nodes := asg.GPUs(), asg.Nodes()
	if err := t.Start(gpus, nodes); err != nil {
		r.fail(err)
		return
	}
	now := r.cfg.Clock.Now()
	restore := 0.0
	if withRestore {
		// Migration or recovery: fetch the checkpoint from the store
		// into the new worker gang.
		if _, ok := r.store.Get(t.ID()); !ok {
			r.fail(fmt.Errorf("executor: trial %d missing checkpoint at stage %d", t.ID(), r.stage))
			return
		}
		restore = r.cfg.RestoreSeconds
		r.tr.Record(now, trace.KindRestore, r.stage, int(t.ID()), "")
	}
	// Persist a stage-start checkpoint so a preemption mid-stage can
	// recover by replaying only this stage.
	ck, err := t.Checkpoint()
	if err != nil {
		r.fail(err)
		return
	}
	r.store.Put(ck)
	r.tr.RecordGang(now, trace.KindTrialStart, r.stage, int(t.ID()), gpus, nodes,
		fmt.Sprintf("%d GPUs on %d nodes", gpus, nodes))
	r.soa.left[t.ID()] = int32(iters)
	r.cfg.Clock.AtOp(now+vclock.Time(restore), r.dispID, opBegin,
		packTrial(t.ID(), r.soa.gen[t.ID()]), 0)
}

// runIteration schedules one training iteration of the trial: it draws
// the iteration latency and enqueues the opIterEnd event that completes
// it. Reading the gang from the live plan at both ends is sound because
// placement preserves running gangs (the contract documented on scatter
// and placement.Controller.Update); any move implies a restart, which
// bumps the generation and strands this event.
func (r *run) runIteration(id trial.ID) {
	if r.err != nil {
		return
	}
	asg := r.plan[placement.TrialID(id)]
	gpus, spread := asg.GPUs(), asg.Nodes()
	dur := r.cfg.Model.IterLatencyDist(r.cfg.Batch, gpus, spread).Sample(r.cfg.RNG)
	if r.cfg.LatencyScale != nil {
		// Drift injection: scale after the draw so the RNG stream is
		// byte-identical with and without drift.
		dur *= r.cfg.LatencyScale(r.cfg.Clock.Now())
	}
	r.cfg.Clock.AtOp(r.cfg.Clock.Now()+vclock.Time(dur), r.dispID, opIterEnd,
		packTrial(id, r.soa.gen[id]), int64(math.Float64bits(dur)))
}

// iterEnd completes one training iteration: meter usage, observe the
// metric, feed the drift detector, then either schedule the next
// iteration or report the trial done with its stage budget.
func (r *run) iterEnd(id trial.ID, dur float64) {
	t := r.trials[int(id)]
	asg := r.plan[placement.TrialID(id)]
	gpus := asg.GPUs()
	// Meter usage for per-function billing and utilization.
	for nid, g := range asg {
		node := r.nodeByID[nid]
		if node == nil {
			r.fail(fmt.Errorf("executor: trial %d placed on missing node %d", id, nid))
			return
		}
		r.cfg.Provider.RecordUsage(node.Instance, float64(g)*dur)
	}
	r.tr.AddBusy(float64(gpus) * dur)

	acc := r.cfg.Model.ObserveAccuracy(t.Config(), t.CumIters()+1, r.cfg.RNG)
	now := r.cfg.Clock.Now()
	if err := t.RecordIteration(acc, now); err != nil {
		r.fail(err)
		return
	}
	r.tr.Record(now, trace.KindTrialIter, r.stage, int(id),
		fmt.Sprintf("acc=%.4f", acc))
	if rc := r.cfg.Replan; rc != nil {
		// Feed the observation unconditionally; only replan when a
		// future stage remains to be rewritten.
		if rc.ObserveIteration(gpus, dur, now) && r.stage < r.cfg.Spec.NumStages()-1 {
			r.tr.Record(now, trace.KindDriftTrigger, r.stage, int(id),
				fmt.Sprintf("gpus=%d", gpus))
			r.doReplan(replan.ReasonDrift)
			if r.err != nil {
				return
			}
		}
	}
	r.soa.left[id]--
	if r.soa.left[id] > 0 {
		r.runIteration(id)
		return
	}
	r.trialStageDone(t)
}

// doReplan asks the replan controller for a decision about the remaining
// stages and splices an adopted plan into the live execution plan. The
// current stage keeps running under its existing allocation either way —
// plan surgery lands at the next stage boundary, where all trials are
// paused and migration is a checkpoint restore, not a gang teleport.
func (r *run) doReplan(reason replan.Reason) {
	rc := r.cfg.Replan
	now := r.cfg.Clock.Now()
	d, err := rc.Replan(replan.State{
		Stage:          r.stage,
		Now:            now,
		RemainingIters: r.remainingStageIters(),
		Plan:           r.execPlan.Clone(),
	}, reason)
	if err != nil {
		r.fail(err)
		return
	}
	r.replans = append(r.replans, d)
	r.tr.Record(now, trace.KindReplan, r.stage, -1, d.Note())
	if d.Adopted {
		r.execPlan = d.NewPlan.Clone()
		r.replanAdopted = true
	}
}

// remainingStageIters conservatively estimates the iterations still
// standing between now and the current stage's barrier along the critical
// path: the furthest-behind runner's remainder, a full stage budget for
// any preemption-recovery restart, plus a full budget per queued wave.
func (r *run) remainingStageIters() int {
	st := r.cfg.Spec.Stage(r.stage)
	end := r.cumItersBefore(r.stage) + st.Iters
	left := 0
	for _, t := range r.trials {
		if t.State() != trial.Running || r.soa.done[t.ID()] {
			continue
		}
		if l := end - t.CumIters(); l > left {
			left = l
		}
	}
	if len(r.pendingRestart) > 0 && st.Iters > left {
		left = st.Iters
	}
	if n := len(r.queue); n > 0 {
		slots := r.soa.slots
		if slots < 1 {
			slots = 1
		}
		left += (n + slots - 1) / slots * st.Iters
	}
	return left
}

// trialStageDone handles a trial finishing its stage budget: hand its slot
// to a queued trial if any, otherwise wait for the synchronization
// barrier.
func (r *run) trialStageDone(t *trial.Trial) {
	now := r.cfg.Clock.Now()
	r.tr.Record(now, trace.KindTrialDone, r.stage, int(t.ID()), "")
	r.remaining--
	r.soa.markDone(t.ID())

	if len(r.queue) > 0 {
		// Reassign the freed slot to the next queued trial.
		nextID := r.queue[0]
		r.queue = r.queue[1:]
		per := r.soa.allocOf(t.ID())
		r.soa.clearAlloc(t.ID())
		r.ctrl.Remove(placement.TrialID(t.ID()))
		r.soa.setAlloc(nextID, per)
		if err := r.place(); err != nil {
			r.fail(err)
			return
		}
		var next *trial.Trial
		for _, cand := range r.trials {
			if cand.ID() == nextID {
				next = cand
			}
		}
		r.startTrial(next, r.cfg.Spec.Stage(r.stage).Iters, r.stage > 0)
	}

	if r.remaining == 0 {
		r.syncBarrier()
	}
}

// onPreemption recovers from the loss of a ready node: trials whose gangs
// touched it are rolled back to their stage-start checkpoints and
// restarted once the cluster manager's automatic replacement is ready.
// Trials that had already finished the stage keep their results — only
// idle workers were lost.
func (r *run) onPreemption(node *cluster.Node) {
	if r.err != nil || r.done {
		return
	}
	r.preemptions++
	now := r.cfg.Clock.Now()
	r.tr.Record(now, trace.KindScaleDown, r.stage, -1,
		fmt.Sprintf("node %d preempted", node.ID))
	if rc := r.cfg.Replan; rc != nil && r.stage < r.cfg.Spec.NumStages()-1 && rc.PreemptionTrigger(now) {
		// The scale_down event above is the trigger evidence; no separate
		// drift_trigger record for preemption-initiated replans.
		r.doReplan(replan.ReasonPreemption)
		if r.err != nil {
			return
		}
	}

	var affected []trial.ID
	for pid, asg := range r.plan {
		if _, hit := asg[node.ID]; !hit {
			continue
		}
		id := trial.ID(pid)
		if r.soa.done[id] {
			continue // finished this stage; nothing running was lost
		}
		if r.trials[int(id)].State() == trial.Running {
			affected = append(affected, id)
		}
	}
	sort.Slice(affected, func(i, j int) bool { return affected[i] < affected[j] })

	for _, id := range affected {
		t := r.trials[int(id)]
		r.soa.gen[id]++ // invalidate in-flight iteration events
		if err := t.Preempt(); err != nil {
			r.fail(err)
			return
		}
		ck, ok := r.store.Get(id)
		if !ok {
			r.fail(fmt.Errorf("executor: preempted trial %d has no checkpoint", id))
			return
		}
		if err := t.Restore(ck); err != nil {
			r.fail(err)
			return
		}
		r.pendingRestart = append(r.pendingRestart, restartEntry{
			id:    id,
			alloc: r.soa.allocOf(id),
		})
		r.soa.clearAlloc(id)
		r.ctrl.Remove(placement.TrialID(id))
		r.tr.Record(now, trace.KindTrialPause, r.stage, int(id), "preempted; will restart stage")
	}
	if len(affected) == 0 {
		return
	}
	// The cluster manager has already requested a replacement node;
	// restart the affected trials when capacity is back.
	r.cfg.Cluster.WhenSize(r.need, func() { r.recoverPreempted() })
}

// recoverPreempted re-places and restarts every trial queued by
// onPreemption.
func (r *run) recoverPreempted() {
	if r.err != nil || r.done || len(r.pendingRestart) == 0 {
		return
	}
	pending := r.pendingRestart
	r.pendingRestart = nil

	nodes := r.cfg.Cluster.Nodes()
	r.nodeByID = make(map[cluster.NodeID]*cluster.Node, len(nodes))
	for _, n := range nodes {
		r.nodeByID[n.ID] = n
	}
	for _, e := range pending {
		r.soa.setAlloc(e.id, e.alloc)
	}
	if err := r.place(); err != nil {
		r.fail(err)
		return
	}
	iters := r.cfg.Spec.Stage(r.stage).Iters
	for _, e := range pending {
		r.startTrial(r.trials[int(e.id)], iters, true)
	}
}

// syncBarrier implements the SYNC node: rank the stage's trials, promote
// the top performers, terminate the rest, then either advance to the next
// stage or finish.
func (r *run) syncBarrier() {
	now := r.cfg.Clock.Now()
	st := r.cfg.Spec.Stage(r.stage)
	r.rows[len(r.rows)-1].End = now
	cum := r.cfg.Provider.TotalCost(now)
	r.rows[len(r.rows)-1].Cost = cum - r.costAtLastBarrier
	r.costAtLastBarrier = cum
	r.tr.Record(now, trace.KindStageEnd, r.stage, -1, "")

	// Rank this stage's participants by their latest observed accuracy.
	ranked := make([]*trial.Trial, 0, st.Trials)
	for _, id := range r.stageSet {
		ranked = append(ranked, r.trials[int(id)])
	}
	sort.Slice(ranked, func(i, j int) bool {
		ai, _ := ranked[i].LatestAccuracy()
		aj, _ := ranked[j].LatestAccuracy()
		if ai != aj {
			return ai > aj
		}
		return ranked[i].ID() < ranked[j].ID()
	})

	last := r.stage == r.cfg.Spec.NumStages()-1
	keep := 0
	if !last {
		keep = r.cfg.Spec.Stage(r.stage + 1).Trials
	}

	for idx, t := range ranked {
		pid := placement.TrialID(t.ID())
		if !last && idx < keep {
			ck, err := t.Checkpoint()
			if err != nil {
				r.fail(err)
				return
			}
			r.store.Put(ck)
			r.tr.Record(now, trace.KindCheckpoint, r.stage, int(t.ID()), "")
			if err := t.Pause(); err != nil {
				r.fail(err)
				return
			}
		} else if last && idx == 0 {
			if err := t.Complete(); err != nil {
				r.fail(err)
				return
			}
		} else {
			if err := t.Terminate(); err != nil {
				r.fail(err)
				return
			}
			r.store.Delete(t.ID())
			r.tr.Record(now, trace.KindTrialKill, r.stage, int(t.ID()), "")
		}
		r.ctrl.Remove(pid)
		r.soa.clearAlloc(t.ID())
	}

	if last {
		r.finish()
		return
	}
	r.startStage(r.stage + 1)
}

// finish releases the cluster and marks completion.
func (r *run) finish() {
	r.cfg.Cluster.ReleaseAll()
	r.done = true
	r.finishedAt = r.cfg.Clock.Now()
}

// buildResult assembles the Result after completion. Times are taken at
// the job's own finish instant so that jobs sharing a clock with others
// (multi-job execution) report their individual JCT.
func (r *run) buildResult() *Result {
	now := r.finishedAt
	res := &Result{
		JCT:         float64(now),
		Cost:        r.cfg.Provider.TotalCost(now),
		Schedule:    append([]StageRow(nil), r.rows...),
		Preemptions: r.preemptions,
		Trials:      r.trials,
		Replans:     append([]replan.Decision(nil), r.replans...),
		FinalPlan:   r.execPlan.Clone(),
	}
	res.BestTrial = -1
	for _, t := range r.trials {
		if t.State() != trial.Completed {
			continue
		}
		if acc, ok := t.LatestAccuracy(); ok && (res.BestTrial < 0 || acc > res.BestAccuracy) {
			res.BestTrial = t.ID()
			res.BestAccuracy = acc
			res.BestConfig = t.Config()
		}
	}
	provisioned := 0.0
	for _, in := range r.cfg.Provider.Instances() {
		provisioned += in.BilledLifetime(now) * float64(in.Type.GPUs)
	}
	if provisioned > 0 {
		res.Utilization = r.tr.BusyGPUSeconds() / provisioned
	}
	return res
}
