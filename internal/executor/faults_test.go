package executor

import (
	"testing"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/trial"
)

// faultHarness builds a harness whose provider injects the given faults.
func faultHarness(t *testing.T, faults cloud.FaultModel, seed uint64) *harness {
	t.Helper()
	h := newHarness(t, cloud.PerInstance, 2, 5, seed)
	if err := h.provider.SetFaults(faults); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestProvisionFailuresRetried(t *testing.T) {
	h := faultHarness(t, cloud.FaultModel{ProvisionFailureProb: 0.4}, 21)
	s := spec.MustSHA(8, 2, 8, 2)
	res, err := Run(runConfig(t, h, s, sim.Uniform(8, s.NumStages()), quietModel(), 21))
	if err != nil {
		t.Fatal(err)
	}
	if res.BestTrial < 0 {
		t.Fatal("job did not complete")
	}
	if h.provider.ProvisionFailures() == 0 {
		t.Fatal("fault injection produced no failures (seed too lucky; adjust)")
	}
	if h.cluster.Retries() != h.provider.ProvisionFailures() {
		t.Fatalf("retries %d != failures %d", h.cluster.Retries(), h.provider.ProvisionFailures())
	}
	// Failed requests were never billed.
	for _, in := range h.provider.Instances() {
		if in.State == cloud.Failed && in.BilledLifetime(h.clock.Now()) != 0 {
			t.Fatalf("failed instance %d billed", in.ID)
		}
	}
}

func TestPreemptionRecovery(t *testing.T) {
	// Aggressive preemption: mean time-to-preempt well inside the job's
	// runtime, so several nodes are lost mid-stage. The job must still
	// complete with the correct tournament structure.
	h := faultHarness(t, cloud.FaultModel{PreemptionMeanSeconds: 400}, 22)
	s := spec.MustSHA(8, 2, 16, 2)
	m := quietModel()
	cfg := runConfig(t, h, s, sim.Uniform(8, s.NumStages()), m, 22)
	cfg.RestoreSeconds = 3
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions == 0 {
		t.Fatal("no preemptions occurred (seed too lucky; adjust mean)")
	}
	// Tournament structure intact.
	completed := 0
	for _, tr := range res.Trials {
		if tr.State() == trial.Completed {
			completed++
		}
	}
	if completed != 1 {
		t.Fatalf("completed = %d, want 1", completed)
	}
	// The winner still trained the full budget despite restarts.
	if got := res.Trials[int(res.BestTrial)].CumIters(); got != s.MaxIters() {
		t.Fatalf("winner trained %d iters, want %d", got, s.MaxIters())
	}
}

func TestPreemptionCostsTime(t *testing.T) {
	// The same job with and without preemptions: recovery replays lost
	// work, so JCT must grow.
	s := spec.MustSHA(8, 2, 16, 2)
	run := func(preempt float64) *Result {
		h := faultHarness(t, cloud.FaultModel{PreemptionMeanSeconds: preempt}, 23)
		m := quietModel()
		cfg := runConfig(t, h, s, sim.Uniform(8, s.NumStages()), m, 23)
		cfg.RestoreSeconds = 3
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	clean := run(0)
	faulty := run(300)
	if faulty.Preemptions == 0 {
		t.Fatal("no preemptions at mean 300s")
	}
	if faulty.JCT <= clean.JCT {
		t.Fatalf("preempted run (%v) not slower than clean run (%v)", faulty.JCT, clean.JCT)
	}
}

func TestPreemptionDeterministic(t *testing.T) {
	s := spec.MustSHA(8, 2, 8, 2)
	runOnce := func() *Result {
		h := faultHarness(t, cloud.FaultModel{PreemptionMeanSeconds: 350}, 24)
		res, err := Run(runConfig(t, h, s, sim.Uniform(8, s.NumStages()), quietModel(), 24))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runOnce(), runOnce()
	if a.JCT != b.JCT || a.Cost != b.Cost || a.Preemptions != b.Preemptions {
		t.Fatalf("nondeterministic under faults: (%v,%v,%d) vs (%v,%v,%d)",
			a.JCT, a.Cost, a.Preemptions, b.JCT, b.Cost, b.Preemptions)
	}
}

func TestFaultModelValidation(t *testing.T) {
	h := newHarness(t, cloud.PerInstance, 0, 0, 25)
	for _, f := range []cloud.FaultModel{
		{ProvisionFailureProb: -0.1},
		{ProvisionFailureProb: 1.0},
		{PreemptionMeanSeconds: -1},
	} {
		if err := h.provider.SetFaults(f); err == nil {
			t.Errorf("invalid fault model accepted: %+v", f)
		}
	}
}

func TestTrialRestore(t *testing.T) {
	tr := trial.New(5, nil)
	if err := tr.Start(2, 1); err != nil {
		t.Fatal(err)
	}
	ck, _ := tr.Checkpoint() // at 0 iterations
	for i := 0; i < 3; i++ {
		_ = tr.RecordIteration(0.5, 0)
	}
	if err := tr.Restore(ck); err == nil {
		t.Fatal("Restore while running succeeded")
	}
	if err := tr.Preempt(); err != nil {
		t.Fatal(err)
	}
	if err := tr.Restore(trial.Checkpoint{Trial: 9}); err == nil {
		t.Fatal("Restore from foreign checkpoint succeeded")
	}
	if err := tr.Restore(ck); err != nil {
		t.Fatal(err)
	}
	if tr.CumIters() != 0 || len(tr.Metrics()) != 0 {
		t.Fatalf("restore did not rewind: iters=%d metrics=%d", tr.CumIters(), len(tr.Metrics()))
	}
	// Cannot restore forward.
	if err := tr.Restore(trial.Checkpoint{Trial: 5, CumIters: 10}); err == nil {
		t.Fatal("forward restore succeeded")
	}
	// Resume and verify normal progress continues.
	if err := tr.Start(2, 1); err != nil {
		t.Fatal(err)
	}
	_ = tr.RecordIteration(0.4, 1)
	if tr.CumIters() != 1 {
		t.Fatalf("iters = %d after resume", tr.CumIters())
	}
}

// quietModel with faults: end-to-end through the core facade is covered
// in core tests; here verify the executor surfaces preemption counts in
// the model path too.
func TestPreemptionCountSurfaced(t *testing.T) {
	h := faultHarness(t, cloud.FaultModel{PreemptionMeanSeconds: 200}, 26)
	s := spec.Empty().AddStage(4, 20)
	m := model.ResNet101()
	m.IterNoiseStd = 0.1
	res, err := Run(runConfig(t, h, s, sim.NewPlan(16), m, 26))
	if err != nil {
		t.Fatal(err)
	}
	if res.Preemptions != h.provider.Preemptions() {
		t.Fatalf("result preemptions %d != provider %d", res.Preemptions, h.provider.Preemptions())
	}
}
