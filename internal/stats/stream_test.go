package stats

import (
	"math"
	"sync"
	"testing"
)

// TestSplitGoldenNonOverlap pins the exact post-Split streams of a fixed
// parent (so any change to the derivation is caught) and proves the child
// stream does not overlap the parent's subsequent output for the first N
// draws.
func TestSplitGoldenNonOverlap(t *testing.T) {
	parent := NewRNG(0x5eed)
	child := parent.Split()

	wantChild := []uint64{0x27b545844ff46746, 0xa773de604056b314, 0x1adc6bc46e1f9645, 0x0741c6821b765e42}
	wantParent := []uint64{0xe1f591112fb5051b, 0xd8ab05640214863a, 0xf985e1f2fb897b03, 0xaf87a5f7e6ce1408}

	// Fresh copies for the golden check so the overlap scan below still
	// sees the streams from the beginning.
	gp := NewRNG(0x5eed)
	gc := gp.Split()
	for i, w := range wantChild {
		if got := gc.Uint64(); got != w {
			t.Fatalf("child draw %d = %#016x, want %#016x", i, got, w)
		}
	}
	for i, w := range wantParent {
		if got := gp.Uint64(); got != w {
			t.Fatalf("parent draw %d = %#016x, want %#016x", i, got, w)
		}
	}

	// Non-overlap: the first N draws of parent and child share no value.
	// A 64-bit collision among 2×4096 uniform draws has probability
	// ~2^-41, so any hit indicates the streams overlap structurally.
	const n = 4096
	seen := make(map[uint64]bool, n)
	for i := 0; i < n; i++ {
		seen[child.Uint64()] = true
	}
	for i := 0; i < n; i++ {
		if v := parent.Uint64(); seen[v] {
			t.Fatalf("parent draw %d (%#016x) appears in child's first %d draws", i, v, n)
		}
	}
}

// TestSplitParentChildUncorrelated checks statistical independence of the
// two streams: the Pearson correlation of paired uniform draws must be
// consistent with zero.
func TestSplitParentChildUncorrelated(t *testing.T) {
	parent := NewRNG(0xabcdef)
	child := parent.Split()
	const n = 20000
	var sx, sy, sxx, syy, sxy float64
	for i := 0; i < n; i++ {
		x, y := parent.Float64(), child.Float64()
		sx += x
		sy += y
		sxx += x * x
		syy += y * y
		sxy += x * y
	}
	cov := sxy/n - (sx/n)*(sy/n)
	vx := sxx/n - (sx/n)*(sx/n)
	vy := syy/n - (sy/n)*(sy/n)
	if corr := cov / math.Sqrt(vx*vy); math.Abs(corr) > 0.03 {
		t.Fatalf("parent/child correlation %v, want ~0", corr)
	}
}

func TestStreamGolden(t *testing.T) {
	s3 := NewRNG(7).Stream(3)
	want := []uint64{0xc233485e80cde930, 0xeed87808009d3a9b, 0xa7a07bf514b887b2, 0x8f99c4ef27bca71b}
	for i, w := range want {
		if got := s3.Uint64(); got != w {
			t.Fatalf("stream draw %d = %#016x, want %#016x", i, got, w)
		}
	}
}

// TestStreamDoesNotAdvanceParent is the purity contract: deriving any
// number of streams leaves the parent's own sequence untouched.
func TestStreamDoesNotAdvanceParent(t *testing.T) {
	a := NewRNG(9)
	b := NewRNG(9)
	for i := uint64(0); i < 100; i++ {
		_ = a.Stream(i)
	}
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: Stream perturbed parent (%d != %d)", i, av, bv)
		}
	}
}

// TestStreamStableAcrossDerivationOrder: Stream(i) denotes the same
// sequence no matter when or how often it is derived.
func TestStreamStableAcrossDerivationOrder(t *testing.T) {
	r := NewRNG(17)
	first := r.Stream(5).Uint64()
	for i := uint64(0); i < 32; i++ {
		_ = r.Stream(i)
	}
	if again := r.Stream(5).Uint64(); again != first {
		t.Fatalf("Stream(5) changed across derivations: %d != %d", again, first)
	}
}

func TestStreamIndicesDistinct(t *testing.T) {
	r := NewRNG(23)
	seen := make(map[uint64]uint64)
	for i := uint64(0); i < 1000; i++ {
		v := r.Stream(i).Uint64()
		if j, dup := seen[v]; dup {
			t.Fatalf("streams %d and %d share first draw %#x", i, j, v)
		}
		seen[v] = i
	}
	// Streams must also differ from the parent's own output.
	if r.Stream(0).Uint64() == NewRNG(23).Uint64() {
		t.Fatal("Stream(0) equals the parent's first draw")
	}
}

// TestStreamConcurrentDerivation is a race-detector target: many
// goroutines deriving streams from one parent must neither race nor
// observe different sequences than serial derivation.
func TestStreamConcurrentDerivation(t *testing.T) {
	r := NewRNG(31)
	const n = 64
	want := make([]uint64, n)
	for i := range want {
		want[i] = r.Stream(uint64(i)).Uint64()
	}
	got := make([]uint64, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			got[i] = r.Stream(uint64(i)).Uint64()
		}(i)
	}
	wg.Wait()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("stream %d: concurrent %d != serial %d", i, got[i], want[i])
		}
	}
}

func TestHash64(t *testing.T) {
	if Hash64(1, 2) == Hash64(2, 1) {
		t.Error("Hash64 insensitive to order")
	}
	if Hash64(1) == Hash64(1, 0) {
		t.Error("Hash64 insensitive to length")
	}
	if Hash64(7, 8, 9) != Hash64(7, 8, 9) {
		t.Error("Hash64 not deterministic")
	}
}
