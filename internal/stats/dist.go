package stats

import (
	"fmt"
	"math"
)

// Dist is a one-dimensional probability distribution over non-negative
// latencies or costs. Implementations must be safe for concurrent use only
// if the supplied RNG is not shared; callers are expected to give each
// goroutine its own RNG (see RNG.Split).
type Dist interface {
	// Sample draws one value using r.
	Sample(r *RNG) float64
	// Mean returns the distribution's expected value.
	Mean() float64
	// String describes the distribution for logs and traces.
	String() string
}

// Deterministic is a point-mass distribution: every sample equals Value.
// It is the zero-variance building block used when a latency source is
// disabled in an experiment (for example "instance initialization = 0 s").
type Deterministic struct {
	Value float64
}

// Sample returns the constant value.
func (d Deterministic) Sample(*RNG) float64 { return d.Value }

// Mean returns the constant value.
func (d Deterministic) Mean() float64 { return d.Value }

func (d Deterministic) String() string { return fmt.Sprintf("det(%g)", d.Value) }

// Normal is a normal distribution truncated at zero: negative draws are
// clamped to 0, matching how the paper samples per-iteration training
// latency (mean mu, straggler variance sigma) without allowing negative
// time.
type Normal struct {
	Mu    float64
	Sigma float64
}

// Sample draws max(0, N(mu, sigma)).
func (n Normal) Sample(r *RNG) float64 {
	v := n.Mu + n.Sigma*r.NormFloat64()
	if v < 0 {
		return 0
	}
	return v
}

// Mean returns mu. For the small sigma/mu ratios used in the experiments
// the truncation bias is negligible, and the planner's Monte-Carlo
// estimates do not rely on this analytic value.
func (n Normal) Mean() float64 { return n.Mu }

func (n Normal) String() string { return fmt.Sprintf("normal(mu=%g, sigma=%g)", n.Mu, n.Sigma) }

// LogNormal is a log-normal distribution parameterized by the mean and
// standard deviation of the underlying normal. It models heavy-tailed cloud
// provisioning delays.
type LogNormal struct {
	Mu    float64 // mean of log(X)
	Sigma float64 // stddev of log(X)
}

// Sample draws exp(N(mu, sigma)).
func (l LogNormal) Sample(r *RNG) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// Mean returns exp(mu + sigma^2/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

func (l LogNormal) String() string {
	return fmt.Sprintf("lognormal(mu=%g, sigma=%g)", l.Mu, l.Sigma)
}

// LogNormalFromMoments returns the LogNormal whose mean and standard
// deviation (of the distribution itself, not the log) equal mean and
// stddev. It panics if mean <= 0 or stddev < 0.
func LogNormalFromMoments(mean, stddev float64) LogNormal {
	if mean <= 0 {
		panic("stats: LogNormalFromMoments requires mean > 0")
	}
	if stddev < 0 {
		panic("stats: LogNormalFromMoments requires stddev >= 0")
	}
	if stddev == 0 {
		// Degenerate: represent as a very tight log-normal.
		return LogNormal{Mu: math.Log(mean), Sigma: 0}
	}
	cv2 := (stddev / mean) * (stddev / mean)
	sigma2 := math.Log(1 + cv2)
	return LogNormal{
		Mu:    math.Log(mean) - sigma2/2,
		Sigma: math.Sqrt(sigma2),
	}
}

// Uniform is a uniform distribution on [Lo, Hi).
type Uniform struct {
	Lo, Hi float64
}

// Sample draws uniformly from [Lo, Hi).
func (u Uniform) Sample(r *RNG) float64 { return u.Lo + (u.Hi-u.Lo)*r.Float64() }

// Mean returns the midpoint.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("uniform[%g, %g)", u.Lo, u.Hi) }

// Exponential is an exponential distribution with the given Mean. It models
// memoryless provider queueing delay.
type Exponential struct {
	MeanValue float64
}

// Sample draws from Exp(1/Mean).
func (e Exponential) Sample(r *RNG) float64 {
	u := r.Float64()
	// Guard against log(0).
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -e.MeanValue * math.Log(1-u)
}

// Mean returns the configured mean.
func (e Exponential) Mean() float64 { return e.MeanValue }

func (e Exponential) String() string { return fmt.Sprintf("exp(mean=%g)", e.MeanValue) }

// Pareto is a Pareto (power-law) distribution with scale x_m and shape
// alpha: P(X > x) = (x_m/x)^alpha for x >= x_m. It models heavy-tailed
// straggler latencies, where a small fraction of iterations take far
// longer than the body — the regime in which synchronization barriers
// hurt most. Construct with NewPareto to validate the parameters.
type Pareto struct {
	Scale float64 // x_m, the minimum value
	Alpha float64 // tail index; mean is finite only for alpha > 1
}

// NewPareto returns a validated Pareto distribution. Alpha must exceed 1
// so the mean exists (the simulator and planner rely on finite means).
func NewPareto(scale, alpha float64) (Pareto, error) {
	if scale <= 0 {
		return Pareto{}, fmt.Errorf("stats: Pareto scale %v must be positive", scale)
	}
	if alpha <= 1 {
		return Pareto{}, fmt.Errorf("stats: Pareto alpha %v must exceed 1 for a finite mean", alpha)
	}
	return Pareto{Scale: scale, Alpha: alpha}, nil
}

// Sample draws via inverse transform: x_m / U^(1/alpha).
func (p Pareto) Sample(r *RNG) float64 {
	u := r.Float64()
	if u == 0 {
		u = math.Nextafter(0, 1)
	}
	return p.Scale / math.Pow(u, 1/p.Alpha)
}

// Mean returns alpha·x_m/(alpha−1).
func (p Pareto) Mean() float64 { return p.Alpha * p.Scale / (p.Alpha - 1) }

func (p Pareto) String() string { return fmt.Sprintf("pareto(xm=%g, alpha=%g)", p.Scale, p.Alpha) }

// Repeat is the distribution of the sum of N independent draws from D. It
// is the general-case form of "run N iterations of latency D back to
// back"; callers with normal or deterministic D should collapse the sum
// analytically instead (see sim.sumIters), which keeps sampling cost
// independent of N.
type Repeat struct {
	D Dist
	N int
}

// Sample draws N values from D and returns their sum.
func (s Repeat) Sample(r *RNG) float64 {
	var sum float64
	for i := 0; i < s.N; i++ {
		sum += s.D.Sample(r)
	}
	return sum
}

// Mean returns N times the wrapped mean.
func (s Repeat) Mean() float64 { return float64(s.N) * s.D.Mean() }

func (s Repeat) String() string { return fmt.Sprintf("sum(%d x %s)", s.N, s.D) }

// Scaled wraps a distribution and multiplies every sample and the mean by
// Factor. It lets the simulator reuse a profiled per-iteration latency
// distribution at a different allocation via a scaling function.
type Scaled struct {
	D      Dist
	Factor float64
}

// Sample draws from the wrapped distribution and scales it.
func (s Scaled) Sample(r *RNG) float64 { return s.Factor * s.D.Sample(r) }

// Mean returns Factor times the wrapped mean.
func (s Scaled) Mean() float64 { return s.Factor * s.D.Mean() }

func (s Scaled) String() string { return fmt.Sprintf("%g*%s", s.Factor, s.D) }

// Shifted adds Offset to every sample of the wrapped distribution; useful
// for fixed setup components on top of a stochastic latency.
type Shifted struct {
	D      Dist
	Offset float64
}

// Sample draws from the wrapped distribution plus the offset.
func (s Shifted) Sample(r *RNG) float64 { return s.Offset + s.D.Sample(r) }

// Mean returns the wrapped mean plus the offset.
func (s Shifted) Mean() float64 { return s.Offset + s.D.Mean() }

func (s Shifted) String() string { return fmt.Sprintf("%g+%s", s.Offset, s.D) }

// Var returns 0: a point mass has no spread.
func (d Deterministic) Var() float64 { return 0 }

// Var returns sigma². Like Mean, it ignores the truncation at zero,
// which is negligible at the sigma/mu ratios the profiles use; the
// analytic estimator's tolerance tests bound the residual bias.
func (n Normal) Var() float64 { return n.Sigma * n.Sigma }

// Var returns (exp(sigma²)−1)·exp(2mu+sigma²).
func (l LogNormal) Var() float64 {
	s2 := l.Sigma * l.Sigma
	return (math.Exp(s2) - 1) * math.Exp(2*l.Mu+s2)
}

// Var returns (Hi−Lo)²/12.
func (u Uniform) Var() float64 {
	w := u.Hi - u.Lo
	return w * w / 12
}

// Var returns Mean².
func (e Exponential) Var() float64 { return e.MeanValue * e.MeanValue }

// Var returns the Pareto variance, which is finite only for alpha > 2;
// below that it returns +Inf, which the analytic estimator treats as
// "unsupported — fall back to Monte-Carlo".
func (p Pareto) Var() float64 {
	if p.Alpha <= 2 {
		return math.Inf(1)
	}
	am1 := p.Alpha - 1
	return p.Scale * p.Scale * p.Alpha / (am1 * am1 * (p.Alpha - 2))
}

// Var returns N times the wrapped variance (independent draws), or NaN
// when the wrapped distribution carries no analytic variance.
func (s Repeat) Var() float64 {
	v, ok := s.D.(Varer)
	if !ok {
		return math.NaN()
	}
	return float64(s.N) * v.Var()
}

// Var returns Factor² times the wrapped variance, or NaN when the wrapped
// distribution carries no analytic variance.
func (s Scaled) Var() float64 {
	v, ok := s.D.(Varer)
	if !ok {
		return math.NaN()
	}
	return s.Factor * s.Factor * v.Var()
}

// Var returns the wrapped variance unchanged (shifting moves only the
// mean), or NaN when the wrapped distribution carries no analytic
// variance.
func (s Shifted) Var() float64 {
	v, ok := s.D.(Varer)
	if !ok {
		return math.NaN()
	}
	return v.Var()
}
