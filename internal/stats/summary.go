package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds order statistics and moments for a sample of float64
// observations. Construct with Summarize.
type Summary struct {
	N      int
	Mean   float64
	Std    float64 // sample standard deviation (n-1 denominator)
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	P99    float64
	StdErr float64 // standard error of the mean
}

// Summarize computes a Summary over xs. It returns a zero Summary when xs is
// empty.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	mean := sum / float64(len(sorted))
	var ss float64
	for _, x := range sorted {
		d := x - mean
		ss += d * d
	}
	std := 0.0
	if len(sorted) > 1 {
		std = math.Sqrt(ss / float64(len(sorted)-1))
	}
	return Summary{
		N:      len(sorted),
		Mean:   mean,
		Std:    std,
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    Percentile(sorted, 0.50),
		P90:    Percentile(sorted, 0.90),
		P99:    Percentile(sorted, 0.99),
		StdErr: std / math.Sqrt(float64(len(sorted))),
	}
}

// Percentile returns the p-th percentile (0 <= p <= 1) of an ascending-
// sorted slice using linear interpolation between closest ranks. It panics
// if sorted is empty or p is out of range.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Percentile of empty slice")
	}
	if p < 0 || p > 1 {
		panic("stats: Percentile p out of [0,1]")
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	rank := p * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// String renders the summary as "mean ± std (n=N)".
func (s Summary) String() string {
	return fmt.Sprintf("%.4g ± %.4g (n=%d)", s.Mean, s.Std, s.N)
}

// MeanStd returns the mean and sample standard deviation of xs, a shorthand
// for the common experiment-table case.
func MeanStd(xs []float64) (mean, std float64) {
	s := Summarize(xs)
	return s.Mean, s.Std
}
