package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleMean(d Dist, r *RNG, n int) float64 {
	var sum float64
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{Value: 3.5}
	r := NewRNG(1)
	for i := 0; i < 10; i++ {
		if v := d.Sample(r); v != 3.5 {
			t.Fatalf("sample %v != 3.5", v)
		}
	}
	if d.Mean() != 3.5 {
		t.Fatalf("mean %v != 3.5", d.Mean())
	}
}

func TestNormalMoments(t *testing.T) {
	d := Normal{Mu: 10, Sigma: 2}
	r := NewRNG(2)
	m := sampleMean(d, r, 100000)
	if math.Abs(m-10) > 0.05 {
		t.Errorf("normal sample mean %v not ~10", m)
	}
}

func TestNormalTruncatesAtZero(t *testing.T) {
	d := Normal{Mu: 0.1, Sigma: 5}
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		if v := d.Sample(r); v < 0 {
			t.Fatalf("negative sample %v", v)
		}
	}
}

func TestLogNormalFromMoments(t *testing.T) {
	d := LogNormalFromMoments(8, 2)
	r := NewRNG(4)
	m := sampleMean(d, r, 200000)
	if math.Abs(m-8) > 0.1 {
		t.Errorf("lognormal sample mean %v not ~8", m)
	}
	if math.Abs(d.Mean()-8) > 1e-9 {
		t.Errorf("analytic mean %v != 8", d.Mean())
	}
}

func TestLogNormalFromMomentsZeroStd(t *testing.T) {
	d := LogNormalFromMoments(5, 0)
	r := NewRNG(5)
	for i := 0; i < 100; i++ {
		if v := d.Sample(r); math.Abs(v-5) > 1e-9 {
			t.Fatalf("degenerate lognormal sampled %v", v)
		}
	}
}

func TestLogNormalFromMomentsPanics(t *testing.T) {
	for _, tc := range []struct{ mean, std float64 }{{0, 1}, {-1, 1}, {1, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for mean=%v std=%v", tc.mean, tc.std)
				}
			}()
			LogNormalFromMoments(tc.mean, tc.std)
		}()
	}
}

func TestUniform(t *testing.T) {
	d := Uniform{Lo: 2, Hi: 4}
	r := NewRNG(6)
	for i := 0; i < 10000; i++ {
		v := d.Sample(r)
		if v < 2 || v >= 4 {
			t.Fatalf("uniform sample %v out of [2,4)", v)
		}
	}
	if d.Mean() != 3 {
		t.Fatalf("uniform mean %v != 3", d.Mean())
	}
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{MeanValue: 7}
	r := NewRNG(7)
	m := sampleMean(d, r, 200000)
	if math.Abs(m-7) > 0.15 {
		t.Errorf("exponential sample mean %v not ~7", m)
	}
}

func TestScaled(t *testing.T) {
	d := Scaled{D: Deterministic{Value: 4}, Factor: 2.5}
	if v := d.Sample(NewRNG(1)); v != 10 {
		t.Fatalf("scaled sample %v != 10", v)
	}
	if d.Mean() != 10 {
		t.Fatalf("scaled mean %v != 10", d.Mean())
	}
}

func TestShifted(t *testing.T) {
	d := Shifted{D: Deterministic{Value: 4}, Offset: 1.5}
	if v := d.Sample(NewRNG(1)); v != 5.5 {
		t.Fatalf("shifted sample %v != 5.5", v)
	}
	if d.Mean() != 5.5 {
		t.Fatalf("shifted mean %v != 5.5", d.Mean())
	}
}

// Property: samples from all standard distributions are non-negative when
// configured with non-negative parameters (latencies must never be
// negative).
func TestQuickNonNegativeSamples(t *testing.T) {
	f := func(seed uint64, muRaw, sigmaRaw uint16) bool {
		mu := float64(muRaw%1000) / 10
		sigma := float64(sigmaRaw%100) / 10
		r := NewRNG(seed)
		dists := []Dist{
			Normal{Mu: mu, Sigma: sigma},
			Exponential{MeanValue: mu + 0.1},
			Uniform{Lo: 0, Hi: mu + 1},
			Deterministic{Value: mu},
		}
		for _, d := range dists {
			for i := 0; i < 8; i++ {
				if d.Sample(r) < 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LogNormalFromMoments preserves the analytic mean.
func TestQuickLogNormalMeanPreserved(t *testing.T) {
	f := func(meanRaw, stdRaw uint16) bool {
		mean := float64(meanRaw%1000)/10 + 0.1
		std := float64(stdRaw%500) / 10
		d := LogNormalFromMoments(mean, std)
		return math.Abs(d.Mean()-mean) < 1e-6*mean+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParetoValidation(t *testing.T) {
	if _, err := NewPareto(0, 2); err == nil {
		t.Error("zero scale accepted")
	}
	if _, err := NewPareto(1, 1); err == nil {
		t.Error("alpha=1 accepted (infinite mean)")
	}
	if _, err := NewPareto(1, 2); err != nil {
		t.Errorf("valid Pareto rejected: %v", err)
	}
}

func TestParetoMoments(t *testing.T) {
	p, err := NewPareto(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p.Mean()-3) > 1e-12 { // alpha*xm/(alpha-1) = 3*2/2
		t.Errorf("analytic mean %v, want 3", p.Mean())
	}
	r := NewRNG(11)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := p.Sample(r)
		if v < 2 {
			t.Fatalf("sample %v below scale", v)
		}
		sum += v
	}
	if got := sum / n; math.Abs(got-3) > 0.05 {
		t.Errorf("sample mean %v, want ~3", got)
	}
}

func TestParetoHeavyTail(t *testing.T) {
	// A Pareto with the same mean as an exponential has a heavier tail:
	// more mass far above the mean.
	p, _ := NewPareto(1, 1.5) // mean 3
	e := Exponential{MeanValue: 3}
	r := NewRNG(12)
	const n, cut = 100000, 30.0
	pTail, eTail := 0, 0
	for i := 0; i < n; i++ {
		if p.Sample(r) > cut {
			pTail++
		}
		if e.Sample(r) > cut {
			eTail++
		}
	}
	if pTail <= eTail {
		t.Errorf("Pareto tail count %d not above exponential %d", pTail, eTail)
	}
}

func TestDistStrings(t *testing.T) {
	p, _ := NewPareto(1, 2)
	for _, d := range []Dist{
		Deterministic{Value: 1}, Normal{Mu: 1, Sigma: 2},
		LogNormal{Mu: 0, Sigma: 1}, Uniform{Lo: 0, Hi: 1},
		Exponential{MeanValue: 1}, p,
		Scaled{D: Deterministic{Value: 1}, Factor: 2},
		Shifted{D: Deterministic{Value: 1}, Offset: 2},
	} {
		if d.String() == "" {
			t.Errorf("%T has empty String", d)
		}
	}
}
