package stats

import (
	"math"
	"testing"
)

// sampleMoment estimates the (mean, variance) of n draws produced by
// sample, for Monte-Carlo validation of the analytic rules.
func sampleMoment(n int, sample func(r *RNG) float64) Moment {
	r := NewRNG(12345)
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := sample(r)
		sum += v
		sq += v * v
	}
	mean := sum / float64(n)
	return Moment{Mean: mean, Var: sq/float64(n) - mean*mean}
}

// TestDistVarAgainstSamples: every Varer implementation must agree with
// the sampled variance of its own Sample method to Monte-Carlo tolerance.
func TestDistVarAgainstSamples(t *testing.T) {
	dists := []Dist{
		Deterministic{Value: 3.5},
		Normal{Mu: 40, Sigma: 3},
		LogNormal{Mu: 1.2, Sigma: 0.4},
		Uniform{Lo: 2, Hi: 9},
		Exponential{MeanValue: 5},
		Pareto{Scale: 2, Alpha: 4},
		Repeat{D: Normal{Mu: 4, Sigma: 0.5}, N: 12},
		Scaled{D: Exponential{MeanValue: 3}, Factor: 2.5},
		Shifted{D: Uniform{Lo: 0, Hi: 4}, Offset: 10},
	}
	const n = 200000
	for _, d := range dists {
		m, ok := DistMoment(d)
		if !ok {
			t.Fatalf("%v: DistMoment unsupported", d)
		}
		got := sampleMoment(n, d.Sample)
		// 6 standard errors of the mean, and 10% relative on the variance.
		tol := 6*math.Sqrt(m.Var/n) + 1e-9
		if math.Abs(got.Mean-m.Mean) > tol {
			t.Errorf("%v: analytic mean %v vs sampled %v (tol %v)", d, m.Mean, got.Mean, tol)
		}
		if m.Var > 0 && math.Abs(got.Var-m.Var) > 0.1*m.Var+1e-9 {
			t.Errorf("%v: analytic var %v vs sampled %v", d, m.Var, got.Var)
		}
	}
}

// TestDistMomentRejectsInfiniteVariance: heavy tails without a second
// moment must be reported as unsupported, not as garbage numbers.
func TestDistMomentRejectsInfiniteVariance(t *testing.T) {
	if _, ok := DistMoment(Pareto{Scale: 1, Alpha: 1.5}); ok {
		t.Error("Pareto alpha=1.5 reported a finite moment")
	}
	if _, ok := DistMoment(Repeat{D: fakeDist{}, N: 3}); ok {
		t.Error("Repeat over a Varer-less dist reported a finite moment")
	}
	if _, ok := DistMoment(Scaled{D: fakeDist{}, Factor: 2}); ok {
		t.Error("Scaled over a Varer-less dist reported a finite moment")
	}
}

// fakeDist is a Dist with no Var method.
type fakeDist struct{}

func (fakeDist) Sample(*RNG) float64 { return 1 }
func (fakeDist) Mean() float64       { return 1 }
func (fakeDist) String() string      { return "fake" }

// TestNormQuantileRoundTrip: the quantile function inverts the CDF to
// high precision across the body and the tails.
func TestNormQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{1e-9, 1e-4, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1 - 1e-4, 1 - 1e-9} {
		x := NormQuantile(p)
		back := NormCDF(x)
		if math.Abs(back-p) > 1e-12+1e-9*p {
			t.Errorf("NormCDF(NormQuantile(%v)) = %v", p, back)
		}
	}
	if !math.IsInf(NormQuantile(0), -1) || !math.IsInf(NormQuantile(1), 1) {
		t.Error("endpoint quantiles are not infinite")
	}
	if NormQuantile(0.5) != 0 && math.Abs(NormQuantile(0.5)) > 1e-12 {
		t.Errorf("median quantile %v", NormQuantile(0.5))
	}
}

// TestMaxIndepClark: Clark's pair max matches the sampled moments of
// max(X, Y) for independent normals, and degenerate pairs are exact.
func TestMaxIndepClark(t *testing.T) {
	cases := []struct{ x, y Moment }{
		{Moment{Mean: 10, Var: 4}, Moment{Mean: 12, Var: 9}},
		{Moment{Mean: 5, Var: 1}, Moment{Mean: 5, Var: 1}},
		{Moment{Mean: 0, Var: 25}, Moment{Mean: 8, Var: 0.01}},
	}
	const n = 400000
	for _, c := range cases {
		got := MaxIndep(c.x, c.y)
		want := sampleMoment(n, func(r *RNG) float64 {
			a := c.x.Mean + c.x.Std()*r.NormFloat64()
			b := c.y.Mean + c.y.Std()*r.NormFloat64()
			return math.Max(a, b)
		})
		if math.Abs(got.Mean-want.Mean) > 0.01*math.Abs(want.Mean)+0.02 {
			t.Errorf("MaxIndep(%v, %v) mean %v, sampled %v", c.x, c.y, got.Mean, want.Mean)
		}
		if math.Abs(got.Var-want.Var) > 0.05*want.Var+0.02 {
			t.Errorf("MaxIndep(%v, %v) var %v, sampled %v", c.x, c.y, got.Var, want.Var)
		}
	}
	// Exactness on point masses.
	if got := MaxIndep(Moment{Mean: 3}, Moment{Mean: 7}); got != (Moment{Mean: 7}) {
		t.Errorf("degenerate max = %v", got)
	}
}

// TestMaxIIDMomentAgainstSamples: the sketch-based gang max tracks the
// sampled moments of the maximum of m iid normals across group sizes,
// including the tail-heavy large-m regime where a Clark pair-chain
// drifts.
func TestMaxIIDMomentAgainstSamples(t *testing.T) {
	base := Moment{Mean: 100, Var: 25}
	const n = 200000
	for _, m := range []int{1, 2, 4, 8, 16, 64, 256} {
		got := MaxIIDMoment(base, m)
		want := sampleMoment(n, func(r *RNG) float64 {
			best := math.Inf(-1)
			for i := 0; i < m; i++ {
				v := base.Mean + base.Std()*r.NormFloat64()
				if v > best {
					best = v
				}
			}
			return best
		})
		if math.Abs(got.Mean-want.Mean) > 0.005*want.Mean {
			t.Errorf("m=%d: mean %v, sampled %v", m, got.Mean, want.Mean)
		}
		// The sketch compresses the extreme tails, so variance carries a
		// larger relative error than the mean; 25% is still far tighter
		// than the Monte-Carlo stderr the planner tolerates.
		if math.Abs(got.Var-want.Var) > 0.25*want.Var+0.05 {
			t.Errorf("m=%d: var %v, sampled %v", m, got.Var, want.Var)
		}
	}
	// Degenerate gang: max of iid point masses is the point mass.
	if got := MaxIIDMoment(Moment{Mean: 42}, 100); got != (Moment{Mean: 42}) {
		t.Errorf("degenerate gang max = %v", got)
	}
}

// TestQSketchQuantileMonotone: the sketch's quantile function is
// monotone, and its Gaussian-tail continuation is exact for a
// normal-derived sketch (whose grid is affine in z).
func TestQSketchQuantileMonotone(t *testing.T) {
	m := Moment{Mean: 10, Var: 4}
	s := SketchNormal(m)
	prev := math.Inf(-1)
	for p := 0.0001; p <= 0.9999; p += 0.005 {
		q := s.Quantile(p)
		if q < prev {
			t.Fatalf("quantile not monotone at p=%v: %v < %v", p, q, prev)
		}
		prev = q
	}
	for _, p := range []float64{1e-6, 0.001, 0.999, 1 - 1e-6} {
		want := m.Mean + m.Std()*NormQuantile(p)
		if got := s.Quantile(p); math.Abs(got-want) > 1e-9*math.Abs(want) {
			t.Errorf("tail quantile(%v) = %v, want %v", p, got, want)
		}
	}
	// A point-mass sketch clamps at the grid everywhere.
	pm := SketchNormal(Moment{Mean: 7})
	if pm.Quantile(1e-9) != 7 || pm.Quantile(1-1e-9) != 7 {
		t.Error("point-mass sketch does not clamp")
	}
}

// TestClampBelow: the min-charge correction matches sampled
// E[max(X, c)] and is exact for degenerate X.
func TestClampBelow(t *testing.T) {
	x := Moment{Mean: 30, Var: 400}
	const c = 60
	got := ClampBelow(x, c)
	want := sampleMoment(400000, func(r *RNG) float64 {
		return math.Max(x.Mean+x.Std()*r.NormFloat64(), c)
	})
	if math.Abs(got.Mean-want.Mean) > 0.01*want.Mean {
		t.Errorf("ClampBelow mean %v, sampled %v", got.Mean, want.Mean)
	}
	if got := ClampBelow(Moment{Mean: 10}, 25); got != (Moment{Mean: 25}) {
		t.Errorf("degenerate clamp = %v", got)
	}
	if got := ClampBelow(Moment{Mean: 80}, 25); got != (Moment{Mean: 80}) {
		t.Errorf("inactive clamp = %v", got)
	}
}

// TestMomentAlgebraZeroAlloc pins the hot-path moment operations to zero
// heap allocations: the analytic pass runs them per node per candidate.
func TestMomentAlgebraZeroAlloc(t *testing.T) {
	x := Moment{Mean: 10, Var: 4}
	y := Moment{Mean: 12, Var: 9}
	var out Moment
	allocs := testing.AllocsPerRun(100, func() {
		s := SketchNormal(x)
		s = s.MaxIID(16)
		out = s.Moment()
		out = MaxIndep(out, y).AddIndep(x)
	})
	if allocs != 0 {
		t.Fatalf("moment algebra allocates %v per run, want 0", allocs)
	}
	_ = out
}
