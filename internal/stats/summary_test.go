package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Fatalf("empty summary not zero: %+v", s)
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{5})
	if s.N != 1 || s.Mean != 5 || s.Std != 0 || s.Min != 5 || s.Max != 5 || s.P50 != 5 {
		t.Fatalf("unexpected: %+v", s)
	}
}

func TestSummarizeKnown(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.Mean != 3 {
		t.Errorf("mean %v != 3", s.Mean)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Errorf("std %v != sqrt(2.5)", s.Std)
	}
	if s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Errorf("order stats wrong: %+v", s)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	sorted := []float64{0, 10}
	if p := Percentile(sorted, 0.5); p != 5 {
		t.Errorf("p50 of {0,10} = %v, want 5", p)
	}
	if p := Percentile(sorted, 0); p != 0 {
		t.Errorf("p0 = %v, want 0", p)
	}
	if p := Percentile(sorted, 1); p != 10 {
		t.Errorf("p100 = %v, want 10", p)
	}
}

func TestPercentilePanics(t *testing.T) {
	for _, tc := range []struct {
		name string
		fn   func()
	}{
		{"empty", func() { Percentile(nil, 0.5) }},
		{"p<0", func() { Percentile([]float64{1}, -0.1) }},
		{"p>1", func() { Percentile([]float64{1}, 1.1) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			tc.fn()
		})
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 6})
	if m != 4 {
		t.Errorf("mean %v != 4", m)
	}
	if math.Abs(s-2) > 1e-12 {
		t.Errorf("std %v != 2", s)
	}
}

// Property: Min <= P50 <= Max and Min <= Mean <= Max for any input.
func TestQuickSummaryOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		s := Summarize(xs)
		return s.Min <= s.P50 && s.P50 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max &&
			s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentiles are monotone in p.
func TestQuickPercentileMonotone(t *testing.T) {
	f := func(raw []uint16, aRaw, bRaw uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		sort.Float64s(xs)
		a := float64(aRaw) / 255
		b := float64(bRaw) / 255
		if a > b {
			a, b = b, a
		}
		return Percentile(xs, a) <= Percentile(xs, b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
