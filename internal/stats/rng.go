// Package stats provides seeded random number generation, probability
// distributions and summary statistics used throughout the RubberBand
// simulator and planner.
//
// All randomness in the repository flows through *RNG so that simulations,
// plans and end-to-end experiments are fully deterministic for a given
// seed. The generator is a splitmix64-seeded xoshiro256** variant, chosen
// for statistical quality, speed and trivial reproducibility without any
// dependence on math/rand global state.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator. The zero value is
// not valid; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances a 64-bit state and returns a well-mixed output. It is
// used only to expand a user seed into the xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed. Two RNGs built from the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	return r
}

// Split derives a new independent generator from r, consuming exactly one
// draw from r to seed the child. The child is a deterministic function of
// r's state at the moment of the call; after that the two streams evolve
// separately — advancing the child never perturbs the parent, and advancing
// the parent never perturbs the child. Because the seed passes through
// splitmix64 expansion, the child's output sequence is statistically
// independent of and non-overlapping with the parent's subsequent output
// (see TestSplitGoldenNonOverlap). Use Split to give each simulated
// component its own stream so that adding draws in one component cannot
// shift the sequence observed by another. Split mutates r and is therefore
// not safe for concurrent use; derive streams with Stream when multiple
// goroutines need them.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Stream returns the i-th child generator derived from r's current state.
// Unlike Split, Stream does not advance r: it is a pure function of the
// receiver's state and i, so for a fixed parent state Stream(i) always
// denotes the same sequence no matter how many streams are derived, in
// what order, or from which goroutines. Distinct indices yield mutually
// independent streams that are also independent of the parent's own
// output. Stream is safe for concurrent use as long as no goroutine
// advances r itself.
func (r *RNG) Stream(i uint64) *RNG {
	h := i
	for _, w := range r.s {
		h = splitmix64(&h) ^ w
	}
	return NewRNG(splitmix64(&h))
}

// State returns the generator's 256-bit internal state — the stream
// cursor control-plane snapshots capture. Restoring a cursor is
// deliberately not provided: recovery re-executes the run from its seed
// and verifies the rebuilt cursor matches the snapshot, rather than
// splicing generator state.
func (r *RNG) State() [4]uint64 { return r.s }

// Hash64 folds the given words into one well-distributed 64-bit value via
// repeated splitmix64 rounds. Callers use it to derive Stream indices from
// structured keys (for example a plan's allocation vector) so that every
// distinct key selects a distinct, deterministic stream family.
func Hash64(words ...uint64) uint64 {
	h := 0x9e3779b97f4a7c15 ^ uint64(len(words))
	for _, w := range words {
		h = splitmix64(&h) ^ w
	}
	return splitmix64(&h)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	// Use the top 53 bits for a uniform double in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Ziggurat tables for NormFloat64 (Doornik's ZIGNOR layout, 128 layers),
// built once at init from the closed-form recursion. The rectangle test
// accepts ~98% of draws with one Uint64 and two multiplies, keeping
// math.Log/Exp off the Monte-Carlo hot path entirely except in the wedges
// and the tail.
const (
	zigR = 3.442619855899      // start of the distribution's right tail
	zigV = 9.91256303526217e-3 // area of each layer
)

var (
	zigX     [129]float64 // layer x-coordinates; zigX[0] = V/f(R), zigX[128] = 0
	zigRatio [128]float64 // zigX[i+1]/zigX[i]: the rectangle acceptance bound
)

func init() {
	f := math.Exp(-0.5 * zigR * zigR)
	zigX[0] = zigV / f
	zigX[1] = zigR
	for i := 2; i < 128; i++ {
		x2 := -2 * math.Log(zigV/zigX[i-1]+f)
		zigX[i] = math.Sqrt(x2)
		f = math.Exp(-0.5 * x2)
	}
	zigX[128] = 0
	for i := 0; i < 128; i++ {
		zigRatio[i] = zigX[i+1] / zigX[i]
	}
}

// NormFloat64 returns a standard normally distributed value (mean 0,
// stddev 1) using the ziggurat method. One 64-bit draw supplies both the
// layer index (low 7 bits) and the signed uniform (top 53 bits).
func (r *RNG) NormFloat64() float64 {
	for {
		bits := r.Uint64()
		i := bits & 127
		u := float64(bits>>11)/(1<<52) - 1 // uniform in [-1, 1)
		if u < zigRatio[i] && u > -zigRatio[i] {
			return u * zigX[i]
		}
		if i == 0 {
			// Bottom layer: sample the tail beyond zigR by rejection.
			neg := u < 0
			for {
				x := -math.Log(r.Float64()) / zigR
				y := -math.Log(r.Float64())
				if y+y >= x*x {
					if neg {
						return -(zigR + x)
					}
					return zigR + x
				}
			}
		}
		// Wedge between the layer's rectangle and the density curve.
		x := u * zigX[i]
		f0 := math.Exp(-0.5 * (zigX[i]*zigX[i] - x*x))
		f1 := math.Exp(-0.5 * (zigX[i+1]*zigX[i+1] - x*x))
		if f1+r.Float64()*(f0-f1) < 1.0 {
			return x
		}
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function, mirroring math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
