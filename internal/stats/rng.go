// Package stats provides seeded random number generation, probability
// distributions and summary statistics used throughout the RubberBand
// simulator and planner.
//
// All randomness in the repository flows through *RNG so that simulations,
// plans and end-to-end experiments are fully deterministic for a given
// seed. The generator is a splitmix64-seeded xoshiro256** variant, chosen
// for statistical quality, speed and trivial reproducibility without any
// dependence on math/rand global state.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator. The zero value is
// not valid; construct with NewRNG.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances a 64-bit state and returns a well-mixed output. It is
// used only to expand a user seed into the xoshiro state.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator seeded from seed. Two RNGs built from the same
// seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	return r
}

// Split derives a new independent generator from r. The derived stream is a
// deterministic function of r's current state, and advancing the child does
// not perturb the parent beyond the single draw consumed here. Use Split to
// give each simulated component its own stream so that adding draws in one
// component cannot shift the sequence observed by another.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniformly distributed value in [0, 1).
func (r *RNG) Float64() float64 {
	// Use the top 53 bits for a uniform double in [0,1).
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniformly distributed integer in [0, n). It panics if
// n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// NormFloat64 returns a standard normally distributed value (mean 0,
// stddev 1) using the Marsaglia polar method.
func (r *RNG) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the provided swap
// function, mirroring math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
