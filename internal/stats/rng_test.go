package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d", i, av, bv)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical draws out of 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRNG(11)
	const n = 100000
	var sum float64
	buckets := make([]int, 10)
	for i := 0; i < n; i++ {
		v := r.Float64()
		sum += v
		buckets[int(v*10)]++
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean %v too far from 0.5", mean)
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("bucket %d count %d deviates >20%% from uniform", i, c)
		}
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for n := 1; n < 50; n++ {
		for i := 0; i < 100; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for Intn(0)")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	var sum, ss float64
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		ss += v * v
	}
	mean := sum / n
	variance := ss/n - mean*mean
	if math.Abs(mean) > 0.01 {
		t.Errorf("normal mean %v not ~0", mean)
	}
	if math.Abs(variance-1) > 0.02 {
		t.Errorf("normal variance %v not ~1", variance)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(99)
	child := parent.Split()
	// Child stream should not equal the parent's subsequent stream.
	equal := true
	for i := 0; i < 20; i++ {
		if parent.Uint64() != child.Uint64() {
			equal = false
			break
		}
	}
	if equal {
		t.Fatal("child stream identical to parent stream")
	}
}

func TestSplitDeterminism(t *testing.T) {
	a := NewRNG(5).Split()
	b := NewRNG(5).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("splits of identical parents diverged")
		}
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(21)
	for n := 0; n < 30; n++ {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	r := NewRNG(22)
	xs := []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	seen := make(map[int]bool)
	for _, v := range xs {
		seen[v] = true
	}
	if len(seen) != 8 {
		t.Fatalf("shuffle lost elements: %v", xs)
	}
}

// Property: Intn results are always within range regardless of seed.
func TestQuickIntnInRange(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw%100) + 1
		r := NewRNG(seed)
		for i := 0; i < 10; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: identical seeds yield identical Float64 streams.
func TestQuickDeterministicStreams(t *testing.T) {
	f := func(seed uint64) bool {
		a, b := NewRNG(seed), NewRNG(seed)
		for i := 0; i < 16; i++ {
			if a.Float64() != b.Float64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
