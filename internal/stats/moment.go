package stats

import "math"

// Moment is a (mean, variance) pair — the sufficient statistic the
// analytic estimator propagates in place of Monte-Carlo sample vectors.
// The algebra below covers exactly the operations a fork-join execution
// DAG needs: sums of independent terms, positive scaling, and maxima of
// independent terms (Clark's Gaussian moment matching, with the quantile
// sketch handling the iid gang case).
type Moment struct {
	Mean, Var float64
}

// Std returns the standard deviation, zero for non-positive variance.
func (m Moment) Std() float64 {
	if m.Var <= 0 {
		return 0
	}
	return math.Sqrt(m.Var)
}

// AddIndep returns the moment of the sum of two independent variables:
// means and variances add.
func (m Moment) AddIndep(o Moment) Moment {
	return Moment{Mean: m.Mean + o.Mean, Var: m.Var + o.Var}
}

// SubIndepPrefix returns the moment of X − P where P is an independent
// prefix of X (X = P + R with R independent of P): the mean and variance
// differences. Variance is clamped at zero against float cancellation.
func (m Moment) SubIndepPrefix(p Moment) Moment {
	v := m.Var - p.Var
	if v < 0 {
		v = 0
	}
	return Moment{Mean: m.Mean - p.Mean, Var: v}
}

// Scale returns the moment of c·X.
func (m Moment) Scale(c float64) Moment {
	return Moment{Mean: c * m.Mean, Var: c * c * m.Var}
}

// IsFinite reports whether both moments are finite — the precondition for
// every analytic propagation step. Distributions with infinite variance
// (Pareto with alpha <= 2) fail it and force the caller back to
// Monte-Carlo estimation.
func (m Moment) IsFinite() bool {
	return !math.IsInf(m.Mean, 0) && !math.IsNaN(m.Mean) &&
		!math.IsInf(m.Var, 0) && !math.IsNaN(m.Var) && m.Var >= 0
}

// invSqrt2Pi is 1/√(2π), the normal density normalizer.
const invSqrt2Pi = 0.3989422804014327

// normPDF is the standard normal density.
func normPDF(x float64) float64 { return invSqrt2Pi * math.Exp(-x*x/2) }

// NormCDF is the standard normal cumulative distribution function.
func NormCDF(x float64) float64 { return 0.5 * math.Erfc(-x/math.Sqrt2) }

// NormQuantile is the standard normal quantile function (inverse CDF),
// computed with Acklam's rational approximation refined by one Halley
// step — relative error below 1e-9 across (0, 1). It returns ±Inf at the
// endpoints.
func NormQuantile(p float64) float64 {
	switch {
	case p <= 0:
		return math.Inf(-1)
	case p >= 1:
		return math.Inf(1)
	}
	// Acklam coefficients.
	var (
		a = [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02, 1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
		b = [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02, 6.680131188771972e+01, -1.328068155288572e+01}
		c = [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00, -2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
		d = [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00, 3.754408661907416e+00}
	)
	const plow, phigh = 0.02425, 1 - 0.02425
	var x float64
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		x = (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= phigh:
		q := p - 0.5
		r := q * q
		x = (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		x = -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
	// One Halley refinement against the exact CDF.
	e := NormCDF(x) - p
	u := e * math.Sqrt(2*math.Pi) * math.Exp(x*x/2)
	return x - u/(1+x*u/2)
}

// MaxIndep returns the moments of max(X, Y) for independent X, Y under
// Clark's Gaussian moment matching (Clark 1961). When both variables are
// degenerate (zero variance) the result is the exact pointwise maximum,
// so deterministic DAGs propagate exactly.
func MaxIndep(x, y Moment) Moment {
	a2 := x.Var + y.Var
	if a2 <= 0 {
		if x.Mean >= y.Mean {
			return x
		}
		return y
	}
	a := math.Sqrt(a2)
	alpha := (x.Mean - y.Mean) / a
	phi, cdf := normPDF(alpha), NormCDF(alpha)
	mean := x.Mean*cdf + y.Mean*(1-cdf) + a*phi
	second := (x.Mean*x.Mean+x.Var)*cdf + (y.Mean*y.Mean+y.Var)*(1-cdf) + (x.Mean+y.Mean)*a*phi
	v := second - mean*mean
	if v < 0 {
		v = 0
	}
	return Moment{Mean: mean, Var: v}
}

// ClampBelow returns the moments of max(X, c) for X approximated as
// normal — the minimum-charge correction of the billing model. A
// degenerate X clamps exactly.
func ClampBelow(x Moment, c float64) Moment {
	if x.Var <= 0 {
		if x.Mean >= c {
			return x
		}
		return Moment{Mean: c}
	}
	return MaxIndep(x, Moment{Mean: c})
}

// SketchSize is the fixed quantile-grid resolution of QSketch. The grid
// holds the distribution's quantiles at the midpoint probability levels
// (j+0.5)/SketchSize, so integrating over the grid is a midpoint
// quadrature of ∫₀¹ q(p) dp.
const SketchSize = 32

// QSketch is a fixed-size quantile sketch: a non-decreasing grid of
// SketchSize quantile values at midpoint probability levels. It is the
// analytic estimator's representation for the max-over-gang and
// deadline-tail terms, where a Gaussian pair-max underestimates the tail:
// the maximum of m iid variables has quantile function q(p^(1/m)), which
// the sketch evaluates directly. The zero value is a point mass at 0.
// QSketch is a value type: all operations return or fill by value, and no
// operation allocates.
type QSketch struct {
	Q [SketchSize]float64
}

// sketchLevel returns the j-th midpoint probability level.
func sketchLevel(j int) float64 { return (float64(j) + 0.5) / SketchSize }

// SketchNormal fills the sketch with the quantiles of N(mean, std²). A
// zero std yields the exact point mass.
func SketchNormal(m Moment) QSketch {
	var s QSketch
	std := m.Std()
	if std == 0 {
		for j := range s.Q {
			s.Q[j] = m.Mean
		}
		return s
	}
	for j := range s.Q {
		s.Q[j] = m.Mean + std*NormQuantile(sketchLevel(j))
	}
	return s
}

// quantile evaluates the sketch's quantile function at p in (0, 1):
// linear interpolation between grid levels inside the grid, and a
// Gaussian-tail continuation beyond it. The continuation matters for
// MaxIID with large gangs, where every evaluation point p^(1/m) lies
// past the top grid level — clamping there would erase the tail the
// gang barrier exists to capture.
func (s *QSketch) quantile(p float64) float64 {
	t := p*SketchSize - 0.5
	switch {
	case t <= 0:
		return s.tail(p, 1, 0)
	case t >= SketchSize-1:
		return s.tail(p, SketchSize-2, SketchSize-1)
	}
	j := int(t)
	frac := t - float64(j)
	return s.Q[j]*(1-frac) + s.Q[j+1]*frac
}

// tail continues the quantile function beyond the grid, linearly in
// standard-normal quantile space through cells j0 and the anchor j1.
// A normal sketch's grid is affine in z, so the continuation is exact
// for it; for other sketches it is a light-tailed extrapolation. A flat
// pair (point mass at the boundary) degrades to a clamp.
func (s *QSketch) tail(p float64, j0, j1 int) float64 {
	dq := s.Q[j1] - s.Q[j0]
	if dq == 0 {
		return s.Q[j1]
	}
	z0, z1 := NormQuantile(sketchLevel(j0)), NormQuantile(sketchLevel(j1))
	return s.Q[j1] + dq/(z1-z0)*(NormQuantile(p)-z1)
}

// Quantile returns the sketched distribution's p-th quantile.
func (s *QSketch) Quantile(p float64) float64 { return s.quantile(p) }

// MaxIID returns the sketch of the maximum of m independent copies of the
// sketched distribution: quantile level p of the max is level p^(1/m) of
// one copy. m <= 1 returns the sketch unchanged.
func (s *QSketch) MaxIID(m int) QSketch {
	if m <= 1 {
		return *s
	}
	inv := 1 / float64(m)
	var out QSketch
	for j := range out.Q {
		out.Q[j] = s.quantile(math.Pow(sketchLevel(j), inv))
	}
	return out
}

// Moment integrates the sketch back to a (mean, variance) pair by
// midpoint quadrature over the grid.
func (s *QSketch) Moment() Moment {
	var sum, sq float64
	for _, q := range s.Q {
		sum += q
		sq += q * q
	}
	mean := sum / SketchSize
	v := sq/SketchSize - mean*mean
	if v < 0 {
		v = 0
	}
	return Moment{Mean: mean, Var: v}
}

// MaxIIDMoment is the composed gang-barrier rule: the moments of the
// maximum of m independent copies of a variable with the given moments,
// approximated as normal on the sketch grid. m <= 1 and degenerate
// inputs return the input exactly.
func MaxIIDMoment(m Moment, n int) Moment {
	if n <= 1 || m.Var <= 0 {
		return m
	}
	c := MaxIIDCoeffs(n)
	std := math.Sqrt(m.Var)
	return Moment{Mean: m.Mean + std*c.Mean, Var: m.Var * c.Var}
}

// MaxIIDCoeffs returns the sketch-rule moments of the maximum of n iid
// standard normals. Because every sketch operation — the affine quantile
// grid, linear interpolation, the z-space tail continuation, and the
// midpoint quadrature — commutes with affine maps of the quantile
// values, the general gang barrier reduces to these universal per-n
// coefficients: max of n iid N(μ, σ²) has mean μ + σ·Mean and variance
// σ²·Var. Gang sizes up to maxIIDTableSize come from an immutable table
// filled at package init, so the DAG moment pass pays constant
// arithmetic per join instead of a 32-level sketch integration.
func MaxIIDCoeffs(n int) Moment {
	if n >= 0 && n <= maxIIDTableSize {
		return maxIIDTable[n]
	}
	return computeMaxIIDCoeffs(n)
}

// maxIIDTableSize bounds the precomputed coefficient table; it covers
// every gang size the experiment specs produce (sibling counts are trial
// counts), with larger gangs falling back to the direct integration.
const maxIIDTableSize = 512

// maxIIDTable is immutable after package init, so reads are pure.
var maxIIDTable = func() (t [maxIIDTableSize + 1]Moment) {
	for n := range t {
		t[n] = computeMaxIIDCoeffs(n)
	}
	return t
}()

// computeMaxIIDCoeffs integrates the standard-normal max sketch for one
// gang size. n <= 1 is the identity by definition (the quadrature would
// otherwise round-trip {0, 1} with sketch error).
func computeMaxIIDCoeffs(n int) Moment {
	if n <= 1 {
		return Moment{Mean: 0, Var: 1}
	}
	s := SketchNormal(Moment{Mean: 0, Var: 1})
	s = s.MaxIID(n)
	return s.Moment()
}

// Varer is the optional moment interface a Dist may implement: Var
// returns the distribution's variance. The analytic estimator requires
// finite variances; distributions that do not implement Varer (or report
// an infinite variance) force Monte-Carlo fallback.
type Varer interface {
	Var() float64
}

// DistMoment extracts (mean, variance) from a distribution, reporting
// whether the distribution supports finite analytic moments.
func DistMoment(d Dist) (Moment, bool) {
	v, ok := d.(Varer)
	if !ok {
		return Moment{}, false
	}
	m := Moment{Mean: d.Mean(), Var: v.Var()}
	return m, m.IsFinite()
}
