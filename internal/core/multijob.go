package core

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/executor"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// BracketResult is one bracket's outcome within a multi-job.
type BracketResult struct {
	Spec      *spec.ExperimentSpec
	Plan      sim.Plan
	Predicted sim.Estimate
	Actual    *executor.Result
	// Grants records the per-stage GPU grants a shared-capacity run gave
	// this bracket (nil for unconstrained multi-jobs).
	Grants []int
}

// MultiResult aggregates a concurrently executed multi-job (Figure 6's
// "collection of specifications", e.g. Hyperband's brackets).
type MultiResult struct {
	Brackets []BracketResult
	// TotalCost sums every bracket's realized cost.
	TotalCost float64
	// JCT is the multi-job's completion time: the max across brackets,
	// since they run concurrently on one (virtual) cloud.
	JCT float64
	// BestAccuracy/BestConfig identify the global winner.
	BestAccuracy float64
	BestConfig   map[string]any
}

// RunMultiJob plans each bracket independently under the template
// experiment's deadline and policy, then executes all brackets
// concurrently in a single virtual timeline: one shared clock, one
// provider and cluster manager per bracket (brackets scale independently;
// costs aggregate). The template's Spec field is ignored; each bracket
// supplies its own.
func (e *Experiment) RunMultiJob(brackets []*spec.ExperimentSpec) (*MultiResult, error) {
	if len(brackets) == 0 {
		return nil, fmt.Errorf("core: no brackets")
	}
	// Plan every bracket first (planning is offline, §3.1).
	plans := make([]sim.Plan, len(brackets))
	preds := make([]sim.Estimate, len(brackets))
	for i, b := range brackets {
		be := *e
		be.Spec = b
		be.Seed = e.Seed + uint64(i)*7919
		res, _, err := be.Plan()
		if err != nil {
			return nil, fmt.Errorf("core: bracket %d: %w", i, err)
		}
		plans[i] = res.Plan
		preds[i] = res.Estimate
	}

	// One shared timeline for all brackets.
	clock := vclock.New()
	cp := e.cloudProfile()
	jobs := make([]*executor.Job, len(brackets))
	providers := make([]*cloud.Provider, len(brackets))
	for i, b := range brackets {
		seed := e.Seed + uint64(i)*7919
		rng := stats.NewRNG(seed + 2)
		provider, err := cloud.NewProvider(clock, rng.Split(), cp.Pricing, cp.Overheads, cp.DatasetGB)
		if err != nil {
			return nil, err
		}
		if err := provider.SetFaults(e.Faults); err != nil {
			return nil, err
		}
		mgr, err := cluster.NewManager(provider, cp.Instance, clock)
		if err != nil {
			return nil, err
		}
		configs := e.Space.SampleN(stats.NewRNG(seed+3), b.TotalTrials())
		job, err := executor.Start(executor.Config{
			Spec:             b,
			Plan:             plans[i],
			Model:            e.Model,
			Batch:            e.batch(),
			Configs:          configs,
			Provider:         provider,
			Cluster:          mgr,
			Clock:            clock,
			RNG:              rng,
			DisablePlacement: e.DisablePlacement,
			RestoreSeconds:   e.RestoreSeconds,
		})
		if err != nil {
			return nil, fmt.Errorf("core: bracket %d: %w", i, err)
		}
		jobs[i] = job
		providers[i] = provider
	}

	clock.RunUntil(func() bool {
		for _, j := range jobs {
			if !j.Done() {
				return false
			}
		}
		return true
	})

	return collectMulti(brackets, plans, preds, jobs, nil)
}

// RunMultiJobShared is RunMultiJob on a capacity-constrained cluster:
// the brackets still share one virtual timeline, but their stage-
// boundary allocations are arbitrated against a single GPU capacity — a
// bracket entering a stage exchanges its current hold for min(planned,
// free) GPUs, never below 1, and a finished bracket releases its hold
// for the others. This is the single-process seed of the serve control
// plane's cross-experiment arbiter: same exchange rule, same capacity
// invariant (Σ holds ≤ capacity after every grant), no wall clock.
// capacity must be at least len(brackets) so every live bracket can hold
// its 1-GPU minimum.
func (e *Experiment) RunMultiJobShared(brackets []*spec.ExperimentSpec, capacity int) (*MultiResult, error) {
	if len(brackets) == 0 {
		return nil, fmt.Errorf("core: no brackets")
	}
	if capacity < len(brackets) {
		return nil, fmt.Errorf("core: capacity %d < %d brackets (each live bracket holds >= 1 GPU)", capacity, len(brackets))
	}
	plans := make([]sim.Plan, len(brackets))
	preds := make([]sim.Estimate, len(brackets))
	for i, b := range brackets {
		be := *e
		be.Spec = b
		be.Seed = e.Seed + uint64(i)*7919
		res, _, err := be.Plan()
		if err != nil {
			return nil, fmt.Errorf("core: bracket %d: %w", i, err)
		}
		plans[i] = res.Plan
		preds[i] = res.Estimate
	}

	clock := vclock.New()
	cp := e.cloudProfile()
	jobs := make([]*executor.Job, len(brackets))
	grants := make([][]int, len(brackets))
	// holds is the shared ledger: every un-finished bracket's current GPU
	// hold, seeded at the 1-GPU minimum. The gates below run serially on
	// the shared virtual clock, so plain slice updates keep the invariant.
	holds := make([]int, len(brackets))
	for i := range holds {
		holds[i] = 1
	}
	for i, b := range brackets {
		seed := e.Seed + uint64(i)*7919
		rng := stats.NewRNG(seed + 2)
		provider, err := cloud.NewProvider(clock, rng.Split(), cp.Pricing, cp.Overheads, cp.DatasetGB)
		if err != nil {
			return nil, err
		}
		if err := provider.SetFaults(e.Faults); err != nil {
			return nil, err
		}
		mgr, err := cluster.NewManager(provider, cp.Instance, clock)
		if err != nil {
			return nil, err
		}
		configs := e.Space.SampleN(stats.NewRNG(seed+3), b.TotalTrials())
		idx := i
		gate := func(stage, planned int) int {
			free := capacity
			for j, h := range holds {
				if j != idx {
					free -= h
				}
			}
			g := planned
			if g > free {
				g = free
			}
			if g < 1 {
				g = 1
			}
			holds[idx] = g
			grants[idx] = append(grants[idx], g)
			return g
		}
		job, err := executor.Start(executor.Config{
			Spec:             b,
			Plan:             plans[i],
			Model:            e.Model,
			Batch:            e.batch(),
			Configs:          configs,
			Provider:         provider,
			Cluster:          mgr,
			Clock:            clock,
			RNG:              rng,
			DisablePlacement: e.DisablePlacement,
			RestoreSeconds:   e.RestoreSeconds,
			StageGate:        gate,
		})
		if err != nil {
			return nil, fmt.Errorf("core: bracket %d: %w", i, err)
		}
		jobs[i] = job
	}

	// Step the shared timeline, releasing each bracket's hold the moment
	// it finishes so the remaining brackets can grow into the freed GPUs
	// at their next stage boundary.
	clock.RunUntil(func() bool {
		done := true
		for i, j := range jobs {
			if j.Done() {
				holds[i] = 0
			} else {
				done = false
			}
		}
		return done
	})

	return collectMulti(brackets, plans, preds, jobs, grants)
}

// collectMulti aggregates the brackets' outcomes.
func collectMulti(brackets []*spec.ExperimentSpec, plans []sim.Plan, preds []sim.Estimate,
	jobs []*executor.Job, grants [][]int) (*MultiResult, error) {
	out := &MultiResult{}
	for i, j := range jobs {
		actual, err := j.Result()
		if err != nil {
			return nil, fmt.Errorf("core: bracket %d: %w", i, err)
		}
		br := BracketResult{
			Spec:      brackets[i],
			Plan:      plans[i],
			Predicted: preds[i],
			Actual:    actual,
		}
		if grants != nil {
			br.Grants = grants[i]
		}
		out.Brackets = append(out.Brackets, br)
		out.TotalCost += actual.Cost
		if actual.JCT > out.JCT {
			out.JCT = actual.JCT
		}
		if actual.BestAccuracy > out.BestAccuracy {
			out.BestAccuracy = actual.BestAccuracy
			out.BestConfig = actual.BestConfig
		}
	}
	return out, nil
}
