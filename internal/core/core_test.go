package core

import (
	"math"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/trace"
)

// table2Experiment reproduces the §6.3.1 workload at a reduced scale that
// keeps unit tests fast: ResNet-101/CIFAR-10, SHA(8, 1, 12, 3), 15-second
// provisioning.
func table2Experiment(t *testing.T, policy Policy, deadline time.Duration, seed uint64) *Experiment {
	t.Helper()
	cp := sim.DefaultCloudProfile()
	cp.Pricing.MinChargeSeconds = 0
	cp.Overheads = cloud.Overheads{
		QueueDelay:  stats.Deterministic{Value: 5},
		InitLatency: stats.Deterministic{Value: 15},
	}
	m := model.ResNet101()
	cp.DatasetGB = m.Dataset.SizeGB
	return &Experiment{
		Model:    m,
		Space:    searchspace.DefaultVisionSpace(),
		Spec:     spec.MustSHA(8, 1, 12, 3),
		Cloud:    cp,
		Deadline: deadline,
		Policy:   policy,
		Seed:     seed,
		Samples:  5,
	}
}

func TestValidation(t *testing.T) {
	e := table2Experiment(t, PolicyRubberBand, 20*time.Minute, 1)
	e.Model = nil
	if _, _, err := e.Plan(); err == nil {
		t.Error("nil model accepted")
	}
	e = table2Experiment(t, PolicyRubberBand, 0, 1)
	if _, _, err := e.Plan(); err == nil {
		t.Error("zero deadline accepted")
	}
	e = table2Experiment(t, Policy(42), 20*time.Minute, 1)
	if _, _, err := e.Plan(); err == nil {
		t.Error("unknown policy accepted")
	}
}

func TestPolicyString(t *testing.T) {
	if PolicyRubberBand.String() != "RubberBand" ||
		PolicyStatic.String() != "Static" ||
		PolicyNaiveElastic.String() != "Naive elastic" {
		t.Error("policy names wrong")
	}
}

func TestPlanPerPolicy(t *testing.T) {
	for _, policy := range []Policy{PolicyStatic, PolicyNaiveElastic, PolicyRubberBand} {
		e := table2Experiment(t, policy, 30*time.Minute, 2)
		res, _, err := e.Plan()
		if err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if err := res.Plan.Validate(e.Spec.NumStages()); err != nil {
			t.Fatalf("%v: %v", policy, err)
		}
		if res.Estimate.JCT > e.Deadline.Seconds() {
			t.Errorf("%v plan violates deadline", policy)
		}
		if policy == PolicyStatic && !res.Plan.IsStatic() {
			t.Errorf("static policy produced %v", res.Plan)
		}
	}
}

func TestRunEndToEnd(t *testing.T) {
	e := table2Experiment(t, PolicyRubberBand, 30*time.Minute, 3)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Actual.JCT <= 0 || res.Actual.Cost <= 0 {
		t.Fatalf("actual = %+v", res.Actual)
	}
	if res.Actual.BestAccuracy < 0.3 {
		t.Errorf("suspiciously low winner accuracy %v", res.Actual.BestAccuracy)
	}
}

// TestSimulationFidelity is the Table 2 "error rate is low" claim: the
// executor's realized JCT and cost must track the simulator's prediction.
func TestSimulationFidelity(t *testing.T) {
	e := table2Experiment(t, PolicyRubberBand, 30*time.Minute, 4)
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	jctErr := math.Abs(res.Actual.JCT-res.Predicted.JCT) / res.Predicted.JCT
	costErr := math.Abs(res.Actual.Cost-res.Predicted.Cost) / res.Predicted.Cost
	if jctErr > 0.15 {
		t.Errorf("JCT error %.1f%% (sim %v vs real %v)", jctErr*100, res.Predicted.JCT, res.Actual.JCT)
	}
	if costErr > 0.20 {
		t.Errorf("cost error %.1f%% (sim %v vs real %v)", costErr*100, res.Predicted.Cost, res.Actual.Cost)
	}
}

func TestRubberBandNoWorseThanStaticRealized(t *testing.T) {
	for _, deadline := range []time.Duration{6 * time.Minute, 12 * time.Minute} {
		static, err := table2Experiment(t, PolicyStatic, deadline, 5).Run()
		if err != nil {
			t.Fatalf("static @%v: %v", deadline, err)
		}
		rb, err := table2Experiment(t, PolicyRubberBand, deadline, 5).Run()
		if err != nil {
			t.Fatalf("rubberband @%v: %v", deadline, err)
		}
		// Allow a small tolerance for execution noise around equal-cost
		// plans.
		if rb.Actual.Cost > static.Actual.Cost*1.05 {
			t.Errorf("deadline %v: RubberBand $%.2f worse than static $%.2f (plans %v vs %v)",
				deadline, rb.Actual.Cost, static.Actual.Cost, rb.Plan, static.Plan)
		}
	}
}

func TestUseProfilerPath(t *testing.T) {
	e := table2Experiment(t, PolicyRubberBand, 30*time.Minute, 6)
	e.UseProfiler = true
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.ProfilingDuration <= 0 {
		t.Error("no profiling time recorded")
	}
	if res.Actual.JCT <= 0 {
		t.Error("no execution")
	}
}

func TestDeterministicSeeds(t *testing.T) {
	a, err := table2Experiment(t, PolicyRubberBand, 30*time.Minute, 7).Run()
	if err != nil {
		t.Fatal(err)
	}
	b, err := table2Experiment(t, PolicyRubberBand, 30*time.Minute, 7).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Actual.JCT != b.Actual.JCT || a.Actual.Cost != b.Actual.Cost || !a.Plan.Equal(b.Plan) {
		t.Fatal("identical seeds produced different runs")
	}
	c, err := table2Experiment(t, PolicyRubberBand, 30*time.Minute, 8).Run()
	if err != nil {
		t.Fatal(err)
	}
	if a.Actual.JCT == c.Actual.JCT && a.Actual.Cost == c.Actual.Cost {
		t.Error("different seeds produced identical runs (suspicious)")
	}
}

func TestTraceWiring(t *testing.T) {
	e := table2Experiment(t, PolicyStatic, 30*time.Minute, 9)
	rec := trace.New()
	e.Trace = rec
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if rec.Count(trace.KindStageStart) != e.Spec.NumStages() {
		t.Errorf("stage starts = %d, want %d", rec.Count(trace.KindStageStart), e.Spec.NumStages())
	}
}

func TestBatchDefaultsToModel(t *testing.T) {
	e := table2Experiment(t, PolicyStatic, 30*time.Minute, 10)
	e.Batch = 0
	if e.batch() != e.Model.BaseBatch {
		t.Fatalf("batch = %d", e.batch())
	}
}
