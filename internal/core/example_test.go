package core_test

import (
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

// Example demonstrates the end-to-end API: declare a Successive Halving
// job, let RubberBand compile a cost-minimizing elastic plan under a
// deadline, and execute it on the simulated cloud. The printed facts are
// structural (and deterministic for the fixed seed), not machine-
// dependent timings.
func Example() {
	cp := sim.DefaultCloudProfile()
	cp.DatasetGB = model.CIFAR10.SizeGB
	cp.Overheads = cloud.Overheads{
		QueueDelay:  stats.Deterministic{Value: 5},
		InitLatency: stats.Deterministic{Value: 15},
	}
	exp := &core.Experiment{
		Model:    model.ResNet101(),
		Space:    searchspace.DefaultVisionSpace(),
		Spec:     spec.MustSHA(8, 1, 12, 3), // 8 -> 2 -> 1 trials
		Cloud:    cp,
		Deadline: 15 * time.Minute,
		Policy:   core.PolicyRubberBand,
		Seed:     42,
		Samples:  5,
	}
	res, err := exp.Run()
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("stages:", len(res.Actual.Schedule))
	fmt.Println("plan covers every stage:", res.Plan.Stages() == exp.Spec.NumStages())
	fmt.Println("met deadline:", res.Actual.JCT <= exp.Deadline.Seconds())
	fmt.Println("one winner:", res.Actual.BestTrial >= 0)
	// Output:
	// stages: 3
	// plan covers every stage: true
	// met deadline: true
	// one winner: true
}
