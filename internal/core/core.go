// Package core is RubberBand's public façade: it wires the profiler,
// simulator, planner, cluster manager, placement controller and executor
// into a single Experiment type that plans and runs a hyperparameter
// tuning job end-to-end on the simulated cloud.
//
// Typical use mirrors the paper's API sketch (Figure 6):
//
//	exp := &core.Experiment{
//	    Model:    model.ResNet101(),
//	    Space:    searchspace.DefaultVisionSpace(),
//	    Spec:     spec.MustSHA(32, 1, 50, 3),
//	    Deadline: 20 * time.Minute,
//	    Policy:   core.PolicyRubberBand,
//	}
//	res, err := exp.Run()
package core

import (
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/executor"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/profiler"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/trace"
	"repro/internal/vclock"
)

// Policy selects the resource allocation policy.
type Policy int

const (
	// PolicyRubberBand is the elastic cost-minimizing planner (§4.3).
	PolicyRubberBand Policy = iota
	// PolicyStatic is the cost-optimal fixed-cluster baseline (§3.2).
	PolicyStatic
	// PolicyNaiveElastic resizes the cluster but keeps a fixed per-trial
	// allocation, as in prior work (§6.3.1).
	PolicyNaiveElastic
)

// String returns the policy name used in tables.
func (p Policy) String() string {
	switch p {
	case PolicyRubberBand:
		return "RubberBand"
	case PolicyStatic:
		return "Static"
	case PolicyNaiveElastic:
		return "Naive elastic"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Experiment configures one tuning job. Zero values select sensible
// defaults where noted.
type Experiment struct {
	// Model is the architecture being tuned (required).
	Model *model.Model
	// Batch is the fixed effective batch size; zero selects the model's
	// BaseBatch.
	Batch int
	// Space is the hyperparameter search space (required).
	Space *searchspace.Space
	// Spec is the early-stopping experiment structure (required).
	Spec *spec.ExperimentSpec
	// Cloud is the provider profile; the zero value selects
	// sim.DefaultCloudProfile() with the model's dataset size.
	Cloud sim.CloudProfile
	// Deadline is the job's time constraint (required).
	Deadline time.Duration
	// Policy selects the allocation policy (default PolicyRubberBand).
	Policy Policy
	// Seed drives every random choice; runs with equal seeds are
	// identical.
	Seed uint64
	// Samples is the simulator's Monte-Carlo sample count (default
	// sim.DefaultSamples).
	Samples int
	// Workers bounds the planning-time concurrency: both the simulator's
	// Monte-Carlo sample fan-out and the planner's candidate evaluation
	// pool. Zero selects GOMAXPROCS; 1 forces fully serial planning.
	// Planning output is bit-identical at any worker count.
	Workers int
	// Estimator selects the simulator's Monte-Carlo estimator mode. The
	// zero value is sim.EstimatorSegment (incremental stage-segment
	// sampling with common random numbers); sim.EstimatorFull selects the
	// reference full-DAG stream discipline.
	Estimator sim.EstimatorMode
	// MaxGPUs caps cluster size during planning (default per planner).
	MaxGPUs int
	// UseProfiler plans from a measured scaling profile (powers-of-two
	// instrumentation, §5) instead of the analytic ground truth. This is
	// how the real system operates; disabling it isolates planning error
	// from profiling error.
	UseProfiler bool
	// RestoreSeconds is the per-migration checkpoint restore latency.
	RestoreSeconds float64
	// DisablePlacement scatters workers (ablation, Table 1).
	DisablePlacement bool
	// Faults injects provider-side failures (provisioning failures,
	// spot preemption) into execution. The zero value is a fault-free
	// provider, matching the paper's assumptions.
	Faults cloud.FaultModel
	// Trace, if set, records execution events.
	Trace *trace.Recorder
}

// Result combines the plan, its simulated prediction and the realized
// execution.
type Result struct {
	Policy    Policy
	Plan      sim.Plan
	Predicted sim.Estimate
	Actual    *executor.Result
	// ProfilingDuration is the simulated time spent in the
	// instrumentation step (0 unless UseProfiler).
	ProfilingDuration float64
}

func (e *Experiment) validate() error {
	switch {
	case e.Model == nil:
		return fmt.Errorf("core: nil model")
	case e.Space == nil:
		return fmt.Errorf("core: nil search space")
	case e.Spec == nil:
		return fmt.Errorf("core: nil spec")
	case e.Deadline <= 0:
		return fmt.Errorf("core: non-positive deadline")
	}
	return e.Model.Validate()
}

func (e *Experiment) batch() int {
	if e.Batch > 0 {
		return e.Batch
	}
	return e.Model.BaseBatch
}

func (e *Experiment) cloudProfile() sim.CloudProfile {
	cp := e.Cloud
	if cp.Instance.Name == "" {
		cp = sim.DefaultCloudProfile()
		cp.DatasetGB = e.Model.Dataset.SizeGB
	}
	return cp
}

// buildPlanner constructs the simulator and planner for this experiment,
// returning also the profiling duration (0 when planning from the
// analytic profile).
func (e *Experiment) buildPlanner() (*planner.Planner, float64, error) {
	cp := e.cloudProfile()
	var (
		prof     sim.TrainProfile
		profTime float64
	)
	if e.UseProfiler {
		rep, err := profiler.Profile(e.Model, e.batch(), profiler.Options{
			MaxGPUs:     maxProbe(e.Spec, cp.Instance.GPUs),
			GPUsPerNode: cp.Instance.GPUs,
		}, stats.NewRNG(e.Seed^0x9e3779b97f4a7c15))
		if err != nil {
			return nil, 0, err
		}
		prof = rep.Profile
		profTime = rep.Duration
	} else {
		prof = sim.ModelTrainProfile{Model: e.Model, Batch: e.batch(), GPUsPerNode: cp.Instance.GPUs}
	}
	sm, err := sim.New(e.Spec, prof, cp, e.Samples, stats.NewRNG(e.Seed+1), sim.WithWorkers(e.Workers), sim.WithEstimator(e.Estimator))
	if err != nil {
		return nil, 0, err
	}
	return &planner.Planner{
		Sim:      sm,
		Deadline: e.Deadline.Seconds(),
		MaxGPUs:  e.MaxGPUs,
		Workers:  e.Workers,
	}, profTime, nil
}

// maxProbe sizes the profiler sweep: enough to cover the largest per-trial
// allocation plans are likely to use.
func maxProbe(s *spec.ExperimentSpec, gpn int) int {
	probe := 4 * gpn
	if probe < 16 {
		probe = 16
	}
	return probe
}

// Plan compiles an allocation plan under the experiment's policy without
// executing it.
func (e *Experiment) Plan() (planner.Result, float64, error) {
	if err := e.validate(); err != nil {
		return planner.Result{}, 0, err
	}
	p, profTime, err := e.buildPlanner()
	if err != nil {
		return planner.Result{}, 0, err
	}
	var res planner.Result
	switch e.Policy {
	case PolicyStatic:
		res, err = p.PlanStatic()
	case PolicyNaiveElastic:
		res, err = p.PlanNaiveElastic()
	case PolicyRubberBand:
		res, err = p.PlanElastic()
	default:
		return planner.Result{}, 0, fmt.Errorf("core: unknown policy %d", e.Policy)
	}
	return res, profTime, err
}

// Execute runs a given plan end-to-end on a fresh simulated cloud and
// returns the realized result.
func (e *Experiment) Execute(plan sim.Plan) (*executor.Result, error) {
	if err := e.validate(); err != nil {
		return nil, err
	}
	cp := e.cloudProfile()
	clock := vclock.New()
	rng := stats.NewRNG(e.Seed + 2)
	provider, err := cloud.NewProvider(clock, rng.Split(), cp.Pricing, cp.Overheads, cp.DatasetGB)
	if err != nil {
		return nil, err
	}
	if err := provider.SetFaults(e.Faults); err != nil {
		return nil, err
	}
	mgr, err := cluster.NewManager(provider, cp.Instance, clock)
	if err != nil {
		return nil, err
	}
	configs := e.Space.SampleN(stats.NewRNG(e.Seed+3), e.Spec.TotalTrials())
	return executor.Run(executor.Config{
		Spec:             e.Spec,
		Plan:             plan,
		Model:            e.Model,
		Batch:            e.batch(),
		Configs:          configs,
		Provider:         provider,
		Cluster:          mgr,
		Clock:            clock,
		RNG:              rng,
		DisablePlacement: e.DisablePlacement,
		RestoreSeconds:   e.RestoreSeconds,
		Trace:            e.Trace,
	})
}

// Run plans under the experiment's policy and executes the plan,
// returning both the prediction and the realized outcome.
func (e *Experiment) Run() (*Result, error) {
	pres, profTime, err := e.Plan()
	if err != nil {
		return nil, err
	}
	actual, err := e.Execute(pres.Plan)
	if err != nil {
		return nil, err
	}
	return &Result{
		Policy:            e.Policy,
		Plan:              pres.Plan,
		Predicted:         pres.Estimate,
		Actual:            actual,
		ProfilingDuration: profTime,
	}, nil
}
