package core

import (
	"testing"
	"time"

	"repro/internal/spec"
)

func TestRunMultiJobHyperband(t *testing.T) {
	e := table2Experiment(t, PolicyRubberBand, 20*time.Minute, 41)
	brackets, err := spec.Hyperband(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunMultiJob(brackets)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Brackets) != len(brackets) {
		t.Fatalf("brackets = %d", len(res.Brackets))
	}
	var sum float64
	maxJCT := 0.0
	for i, b := range res.Brackets {
		if b.Actual.JCT <= 0 || b.Actual.Cost <= 0 {
			t.Fatalf("bracket %d: %+v", i, b.Actual)
		}
		sum += b.Actual.Cost
		if b.Actual.JCT > maxJCT {
			maxJCT = b.Actual.JCT
		}
	}
	if res.TotalCost != sum {
		t.Errorf("TotalCost %v != sum %v", res.TotalCost, sum)
	}
	// Concurrent execution: the multi-job's JCT is the slowest bracket,
	// not the sum.
	if res.JCT != maxJCT {
		t.Errorf("JCT %v != max bracket JCT %v", res.JCT, maxJCT)
	}
	if res.BestAccuracy <= 0 || res.BestConfig == nil {
		t.Error("no global winner")
	}
	// The global winner is at least as good as every bracket's winner.
	for i, b := range res.Brackets {
		if b.Actual.BestAccuracy > res.BestAccuracy {
			t.Errorf("bracket %d beat the global winner", i)
		}
	}
}

func TestRunMultiJobValidation(t *testing.T) {
	e := table2Experiment(t, PolicyRubberBand, 20*time.Minute, 42)
	if _, err := e.RunMultiJob(nil); err == nil {
		t.Error("empty bracket list accepted")
	}
}

func TestRunMultiJobDeterministic(t *testing.T) {
	brackets, err := spec.Hyperband(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() *MultiResult {
		e := table2Experiment(t, PolicyRubberBand, 20*time.Minute, 43)
		res, err := e.RunMultiJob(brackets)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runOnce(), runOnce()
	if a.TotalCost != b.TotalCost || a.JCT != b.JCT || a.BestAccuracy != b.BestAccuracy {
		t.Fatal("multi-job not deterministic")
	}
}
