package core

import (
	"testing"
	"time"

	"repro/internal/spec"
)

func TestRunMultiJobHyperband(t *testing.T) {
	e := table2Experiment(t, PolicyRubberBand, 20*time.Minute, 41)
	brackets, err := spec.Hyperband(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RunMultiJob(brackets)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Brackets) != len(brackets) {
		t.Fatalf("brackets = %d", len(res.Brackets))
	}
	var sum float64
	maxJCT := 0.0
	for i, b := range res.Brackets {
		if b.Actual.JCT <= 0 || b.Actual.Cost <= 0 {
			t.Fatalf("bracket %d: %+v", i, b.Actual)
		}
		sum += b.Actual.Cost
		if b.Actual.JCT > maxJCT {
			maxJCT = b.Actual.JCT
		}
	}
	if res.TotalCost != sum {
		t.Errorf("TotalCost %v != sum %v", res.TotalCost, sum)
	}
	// Concurrent execution: the multi-job's JCT is the slowest bracket,
	// not the sum.
	if res.JCT != maxJCT {
		t.Errorf("JCT %v != max bracket JCT %v", res.JCT, maxJCT)
	}
	if res.BestAccuracy <= 0 || res.BestConfig == nil {
		t.Error("no global winner")
	}
	// The global winner is at least as good as every bracket's winner.
	for i, b := range res.Brackets {
		if b.Actual.BestAccuracy > res.BestAccuracy {
			t.Errorf("bracket %d beat the global winner", i)
		}
	}
}

func TestRunMultiJobValidation(t *testing.T) {
	e := table2Experiment(t, PolicyRubberBand, 20*time.Minute, 42)
	if _, err := e.RunMultiJob(nil); err == nil {
		t.Error("empty bracket list accepted")
	}
}

func TestRunMultiJobDeterministic(t *testing.T) {
	brackets, err := spec.Hyperband(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() *MultiResult {
		e := table2Experiment(t, PolicyRubberBand, 20*time.Minute, 43)
		res, err := e.RunMultiJob(brackets)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runOnce(), runOnce()
	if a.TotalCost != b.TotalCost || a.JCT != b.JCT || a.BestAccuracy != b.BestAccuracy {
		t.Fatal("multi-job not deterministic")
	}
}

func TestRunMultiJobSharedCapacityInvariant(t *testing.T) {
	e := table2Experiment(t, PolicyRubberBand, 20*time.Minute, 44)
	brackets, err := spec.Hyperband(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	const capacity = 6
	res, err := e.RunMultiJobShared(brackets, capacity)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range res.Brackets {
		if len(b.Grants) != b.Spec.NumStages() {
			t.Fatalf("bracket %d: %d grants for %d stages", i, len(b.Grants), b.Spec.NumStages())
		}
		for s, g := range b.Grants {
			if g < 1 {
				t.Errorf("bracket %d stage %d granted %d GPUs, want >= 1", i, s, g)
			}
			if g > b.Plan.Alloc[s] {
				t.Errorf("bracket %d stage %d granted %d > planned %d", i, s, g, b.Plan.Alloc[s])
			}
			if g > capacity {
				t.Errorf("bracket %d stage %d granted %d > capacity %d", i, s, g, capacity)
			}
		}
		// The executed plan must be the granted one.
		for s, g := range b.Grants {
			if b.Actual.FinalPlan.Alloc[s] != g {
				t.Errorf("bracket %d stage %d executed %d GPUs, granted %d", i, s, b.Actual.FinalPlan.Alloc[s], g)
			}
		}
	}
	// The constrained fleet can be no faster than the unconstrained one.
	free, err := table2Experiment(t, PolicyRubberBand, 20*time.Minute, 44).RunMultiJob(brackets)
	if err != nil {
		t.Fatal(err)
	}
	if res.JCT < free.JCT {
		t.Errorf("shared-capacity JCT %v beat unconstrained JCT %v", res.JCT, free.JCT)
	}
}

func TestRunMultiJobSharedValidation(t *testing.T) {
	e := table2Experiment(t, PolicyRubberBand, 20*time.Minute, 45)
	brackets, err := spec.Hyperband(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunMultiJobShared(nil, 8); err == nil {
		t.Error("empty bracket list accepted")
	}
	if _, err := e.RunMultiJobShared(brackets, len(brackets)-1); err == nil {
		t.Error("capacity below bracket count accepted")
	}
}

func TestRunMultiJobSharedDeterministic(t *testing.T) {
	brackets, err := spec.Hyperband(9, 3)
	if err != nil {
		t.Fatal(err)
	}
	runOnce := func() *MultiResult {
		e := table2Experiment(t, PolicyRubberBand, 20*time.Minute, 46)
		res, err := e.RunMultiJobShared(brackets, 6)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := runOnce(), runOnce()
	if a.TotalCost != b.TotalCost || a.JCT != b.JCT || a.BestAccuracy != b.BestAccuracy {
		t.Fatal("shared multi-job not deterministic")
	}
	for i := range a.Brackets {
		ga, gb := a.Brackets[i].Grants, b.Brackets[i].Grants
		if len(ga) != len(gb) {
			t.Fatalf("bracket %d grant counts differ", i)
		}
		for s := range ga {
			if ga[s] != gb[s] {
				t.Fatalf("bracket %d stage %d grants differ: %d vs %d", i, s, ga[s], gb[s])
			}
		}
	}
}
