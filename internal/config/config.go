// Package config loads experiment definitions from JSON, standing in for
// the cluster configuration file RubberBand's cluster manager consumes
// (§5: instance types, images and initialization scripts) extended with
// the full experiment: model, search algorithm parameters, deadline,
// policy and cloud profile.
//
// A minimal file:
//
//	{
//	  "model": "resnet101",
//	  "deadline": "20m",
//	  "sha": {"n": 32, "r": 1, "max_r": 50, "eta": 3}
//	}
//
// Everything else defaults sensibly (RubberBand policy, p3.8xlarge
// on-demand workers, the paper's provisioning overheads).
package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

// File is the top-level JSON document.
type File struct {
	// Model names a zoo model: resnet50, resnet101, resnet152, bert.
	Model string `json:"model"`
	// Batch overrides the model's base batch size (0 = default).
	Batch int `json:"batch,omitempty"`
	// Deadline is a Go duration string, e.g. "20m".
	Deadline string `json:"deadline"`
	// Policy is "rubberband" (default), "static" or "naive".
	Policy string `json:"policy,omitempty"`
	// SHA gives the Successive Halving parameters.
	SHA SHASpec `json:"sha"`
	// Cloud overrides the provider profile.
	Cloud *CloudSpec `json:"cloud,omitempty"`
	// Seed, Samples, MaxGPUs mirror core.Experiment.
	Seed    uint64 `json:"seed,omitempty"`
	Samples int    `json:"samples,omitempty"`
	MaxGPUs int    `json:"max_gpus,omitempty"`
	// UseProfiler plans from measured scaling instead of ground truth.
	UseProfiler bool `json:"use_profiler,omitempty"`
	// RestoreSeconds is the checkpoint-restore latency per migration.
	RestoreSeconds float64 `json:"restore_seconds,omitempty"`
}

// SHASpec holds SHA(n, r, R, η).
type SHASpec struct {
	N    int `json:"n"`
	R    int `json:"r"`
	MaxR int `json:"max_r"`
	Eta  int `json:"eta"`
}

// CloudSpec overrides the provider profile.
type CloudSpec struct {
	// Instance is a catalog name, e.g. "p3.8xlarge".
	Instance string `json:"instance,omitempty"`
	// Billing is "per-instance" (default) or "per-function".
	Billing string `json:"billing,omitempty"`
	// Market is "on-demand" (default) or "spot".
	Market string `json:"market,omitempty"`
	// MinChargeSeconds is the per-instance billing minimum (default 60).
	MinChargeSeconds *float64 `json:"min_charge_seconds,omitempty"`
	// DataPricePerGB is the ingress price.
	DataPricePerGB float64 `json:"data_price_per_gb,omitempty"`
	// DatasetGB overrides the model's dataset size.
	DatasetGB *float64 `json:"dataset_gb,omitempty"`
	// QueueDelay and InitLatency are provisioning overheads.
	QueueDelay  *DistSpec `json:"queue_delay,omitempty"`
	InitLatency *DistSpec `json:"init_latency,omitempty"`
	// Faults enables provider fault injection.
	Faults *FaultSpec `json:"faults,omitempty"`
}

// FaultSpec mirrors cloud.FaultModel.
type FaultSpec struct {
	ProvisionFailureProb  float64 `json:"provision_failure_prob,omitempty"`
	PreemptionMeanSeconds float64 `json:"preemption_mean_seconds,omitempty"`
}

// DistSpec describes a latency distribution.
type DistSpec struct {
	// Type is "deterministic", "normal", "lognormal", "exponential",
	// "uniform" or "pareto".
	Type string `json:"type"`
	// Value is the deterministic constant.
	Value float64 `json:"value,omitempty"`
	// Mean and Std parameterize normal/lognormal/exponential.
	Mean float64 `json:"mean,omitempty"`
	Std  float64 `json:"std,omitempty"`
	// Lo and Hi bound the uniform distribution.
	Lo float64 `json:"lo,omitempty"`
	Hi float64 `json:"hi,omitempty"`
	// Scale and Alpha parameterize the Pareto distribution.
	Scale float64 `json:"scale,omitempty"`
	Alpha float64 `json:"alpha,omitempty"`
}

// Dist builds the stats.Dist the spec describes.
func (d DistSpec) Dist() (stats.Dist, error) {
	switch d.Type {
	case "deterministic":
		if d.Value < 0 {
			return nil, fmt.Errorf("config: negative deterministic value %v", d.Value)
		}
		return stats.Deterministic{Value: d.Value}, nil
	case "normal":
		if d.Mean < 0 || d.Std < 0 {
			return nil, fmt.Errorf("config: invalid normal(%v, %v)", d.Mean, d.Std)
		}
		return stats.Normal{Mu: d.Mean, Sigma: d.Std}, nil
	case "lognormal":
		if d.Mean <= 0 || d.Std < 0 {
			return nil, fmt.Errorf("config: invalid lognormal(%v, %v)", d.Mean, d.Std)
		}
		return stats.LogNormalFromMoments(d.Mean, d.Std), nil
	case "exponential":
		if d.Mean <= 0 {
			return nil, fmt.Errorf("config: invalid exponential mean %v", d.Mean)
		}
		return stats.Exponential{MeanValue: d.Mean}, nil
	case "uniform":
		if d.Hi < d.Lo || d.Lo < 0 {
			return nil, fmt.Errorf("config: invalid uniform[%v, %v)", d.Lo, d.Hi)
		}
		return stats.Uniform{Lo: d.Lo, Hi: d.Hi}, nil
	case "pareto":
		p, err := stats.NewPareto(d.Scale, d.Alpha)
		if err != nil {
			return nil, err
		}
		return p, nil
	default:
		return nil, fmt.Errorf("config: unknown distribution type %q", d.Type)
	}
}

// Parse decodes and validates a JSON document into a ready-to-run
// experiment (including any requested fault injection).
func Parse(data []byte) (*core.Experiment, error) {
	var f File
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}
	return f.Build()
}

// Load reads and parses a JSON file.
func Load(path string) (*core.Experiment, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(data)
}

// Build materializes the experiment.
func (f File) Build() (*core.Experiment, error) {
	var faults cloud.FaultModel
	if f.Model == "" {
		return nil, fmt.Errorf("config: missing model")
	}
	m, err := model.ByName(f.Model)
	if err != nil {
		return nil, err
	}
	if f.Deadline == "" {
		return nil, fmt.Errorf("config: missing deadline")
	}
	deadline, err := time.ParseDuration(f.Deadline)
	if err != nil {
		return nil, fmt.Errorf("config: deadline: %w", err)
	}
	sha, err := spec.SHA(spec.SHAParams{N: f.SHA.N, R: f.SHA.R, MaxR: f.SHA.MaxR, Eta: f.SHA.Eta})
	if err != nil {
		return nil, err
	}
	var policy core.Policy
	switch f.Policy {
	case "", "rubberband":
		policy = core.PolicyRubberBand
	case "static":
		policy = core.PolicyStatic
	case "naive":
		policy = core.PolicyNaiveElastic
	default:
		return nil, fmt.Errorf("config: unknown policy %q", f.Policy)
	}
	space := searchspace.DefaultVisionSpace()
	if m.Name == "bert" {
		space = searchspace.DefaultNLPSpace()
	}

	cp := sim.DefaultCloudProfile()
	cp.DatasetGB = m.Dataset.SizeGB
	if f.Cloud != nil {
		if cp, err = f.Cloud.apply(cp); err != nil {
			return nil, err
		}
		if f.Cloud.Faults != nil {
			faults = cloud.FaultModel{
				ProvisionFailureProb:  f.Cloud.Faults.ProvisionFailureProb,
				PreemptionMeanSeconds: f.Cloud.Faults.PreemptionMeanSeconds,
			}
			if err := faults.Validate(); err != nil {
				return nil, err
			}
		}
	}

	return &core.Experiment{
		Model:          m,
		Batch:          f.Batch,
		Space:          space,
		Spec:           sha,
		Cloud:          cp,
		Deadline:       deadline,
		Policy:         policy,
		Seed:           f.Seed,
		Samples:        f.Samples,
		MaxGPUs:        f.MaxGPUs,
		UseProfiler:    f.UseProfiler,
		RestoreSeconds: f.RestoreSeconds,
		Faults:         faults,
	}, nil
}

// apply overlays the spec onto a base profile.
func (c CloudSpec) apply(cp sim.CloudProfile) (sim.CloudProfile, error) {
	if c.Instance != "" {
		it, err := cloud.DefaultCatalog().Lookup(c.Instance)
		if err != nil {
			return cp, err
		}
		cp.Instance = it
	}
	switch c.Billing {
	case "":
	case "per-instance":
		cp.Pricing.Billing = cloud.PerInstance
	case "per-function":
		cp.Pricing.Billing = cloud.PerFunction
	default:
		return cp, fmt.Errorf("config: unknown billing %q", c.Billing)
	}
	switch c.Market {
	case "":
	case "on-demand":
		cp.Pricing.Market = cloud.OnDemand
	case "spot":
		cp.Pricing.Market = cloud.Spot
	default:
		return cp, fmt.Errorf("config: unknown market %q", c.Market)
	}
	if c.MinChargeSeconds != nil {
		cp.Pricing.MinChargeSeconds = *c.MinChargeSeconds
	}
	cp.Pricing.DataPricePerGB = c.DataPricePerGB
	if c.DatasetGB != nil {
		cp.DatasetGB = *c.DatasetGB
	}
	if c.QueueDelay != nil {
		d, err := c.QueueDelay.Dist()
		if err != nil {
			return cp, err
		}
		cp.Overheads.QueueDelay = d
	}
	if c.InitLatency != nil {
		d, err := c.InitLatency.Dist()
		if err != nil {
			return cp, err
		}
		cp.Overheads.InitLatency = d
	}
	return cp, cp.Validate()
}
