package config

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/stats"
)

const minimal = `{
  "model": "resnet101",
  "deadline": "20m",
  "sha": {"n": 32, "r": 1, "max_r": 50, "eta": 3}
}`

func TestParseMinimal(t *testing.T) {
	e, err := Parse([]byte(minimal))
	if err != nil {
		t.Fatal(err)
	}
	if e.Model.Name != "resnet101" {
		t.Errorf("model = %s", e.Model.Name)
	}
	if e.Deadline != 20*time.Minute {
		t.Errorf("deadline = %v", e.Deadline)
	}
	if e.Policy != core.PolicyRubberBand {
		t.Errorf("policy = %v", e.Policy)
	}
	if e.Spec.TotalTrials() != 32 || e.Spec.MaxIters() != 50 {
		t.Errorf("spec = %v", e.Spec)
	}
	if e.Faults != (cloud.FaultModel{}) {
		t.Errorf("unexpected faults %+v", e.Faults)
	}
	// The built experiment actually plans.
	if _, _, err := e.Plan(); err != nil {
		t.Fatal(err)
	}
}

func TestParseFull(t *testing.T) {
	doc := `{
	  "model": "bert",
	  "batch": 64,
	  "deadline": "10m",
	  "policy": "static",
	  "sha": {"n": 16, "r": 1, "max_r": 20, "eta": 2},
	  "seed": 9,
	  "samples": 7,
	  "max_gpus": 64,
	  "use_profiler": true,
	  "restore_seconds": 2.5,
	  "cloud": {
	    "instance": "p3.16xlarge",
	    "billing": "per-function",
	    "market": "spot",
	    "min_charge_seconds": 0,
	    "data_price_per_gb": 0.01,
	    "dataset_gb": 42,
	    "queue_delay": {"type": "exponential", "mean": 8},
	    "init_latency": {"type": "normal", "mean": 15, "std": 3},
	    "faults": {"provision_failure_prob": 0.1, "preemption_mean_seconds": 900}
	  }
	}`
	e, err := Parse([]byte(doc))
	if err != nil {
		t.Fatal(err)
	}
	if e.Model.Name != "bert" || e.Batch != 64 || e.Policy != core.PolicyStatic {
		t.Errorf("experiment = %+v", e)
	}
	if e.Cloud.Instance.Name != "p3.16xlarge" {
		t.Errorf("instance = %s", e.Cloud.Instance.Name)
	}
	if e.Cloud.Pricing.Billing != cloud.PerFunction || e.Cloud.Pricing.Market != cloud.Spot {
		t.Errorf("pricing = %+v", e.Cloud.Pricing)
	}
	if e.Cloud.Pricing.MinChargeSeconds != 0 || e.Cloud.Pricing.DataPricePerGB != 0.01 {
		t.Errorf("pricing = %+v", e.Cloud.Pricing)
	}
	if e.Cloud.DatasetGB != 42 {
		t.Errorf("dataset = %v", e.Cloud.DatasetGB)
	}
	if e.Faults.ProvisionFailureProb != 0.1 || e.Faults.PreemptionMeanSeconds != 900 {
		t.Errorf("faults = %+v", e.Faults)
	}
	if !e.UseProfiler || e.RestoreSeconds != 2.5 || e.Seed != 9 {
		t.Errorf("options = %+v", e)
	}
}

func TestParseRejects(t *testing.T) {
	cases := map[string]string{
		"missing model":    `{"deadline": "1m", "sha": {"n":2,"r":1,"max_r":2,"eta":2}}`,
		"unknown model":    `{"model": "vgg", "deadline": "1m", "sha": {"n":2,"r":1,"max_r":2,"eta":2}}`,
		"missing deadline": `{"model": "bert", "sha": {"n":2,"r":1,"max_r":2,"eta":2}}`,
		"bad deadline":     `{"model": "bert", "deadline": "soon", "sha": {"n":2,"r":1,"max_r":2,"eta":2}}`,
		"bad sha":          `{"model": "bert", "deadline": "1m", "sha": {"n":0,"r":1,"max_r":2,"eta":2}}`,
		"bad policy":       `{"model": "bert", "deadline": "1m", "policy": "magic", "sha": {"n":2,"r":1,"max_r":2,"eta":2}}`,
		"unknown field":    `{"model": "bert", "deadline": "1m", "sha": {"n":2,"r":1,"max_r":2,"eta":2}, "wat": 1}`,
		"bad instance":     `{"model": "bert", "deadline": "1m", "sha": {"n":2,"r":1,"max_r":2,"eta":2}, "cloud": {"instance": "zz"}}`,
		"bad billing":      `{"model": "bert", "deadline": "1m", "sha": {"n":2,"r":1,"max_r":2,"eta":2}, "cloud": {"billing": "weird"}}`,
		"bad market":       `{"model": "bert", "deadline": "1m", "sha": {"n":2,"r":1,"max_r":2,"eta":2}, "cloud": {"market": "gray"}}`,
		"bad dist":         `{"model": "bert", "deadline": "1m", "sha": {"n":2,"r":1,"max_r":2,"eta":2}, "cloud": {"queue_delay": {"type": "zeta"}}}`,
		"bad faults":       `{"model": "bert", "deadline": "1m", "sha": {"n":2,"r":1,"max_r":2,"eta":2}, "cloud": {"faults": {"provision_failure_prob": 2}}}`,
		"not json":         `{`,
	}
	for name, doc := range cases {
		if _, err := Parse([]byte(doc)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestDistSpecs(t *testing.T) {
	r := stats.NewRNG(1)
	cases := []struct {
		spec DistSpec
		mean float64
		tol  float64
	}{
		{DistSpec{Type: "deterministic", Value: 5}, 5, 0},
		{DistSpec{Type: "normal", Mean: 10, Std: 1}, 10, 0.2},
		{DistSpec{Type: "lognormal", Mean: 8, Std: 2}, 8, 0.4},
		{DistSpec{Type: "exponential", Mean: 3}, 3, 0.2},
		{DistSpec{Type: "uniform", Lo: 2, Hi: 4}, 3, 0.1},
		{DistSpec{Type: "pareto", Scale: 1, Alpha: 3}, 1.5, 0.1},
	}
	for _, c := range cases {
		d, err := c.spec.Dist()
		if err != nil {
			t.Fatalf("%+v: %v", c.spec, err)
		}
		var sum float64
		const n = 20000
		for i := 0; i < n; i++ {
			v := d.Sample(r)
			if v < 0 {
				t.Fatalf("%s sampled negative %v", c.spec.Type, v)
			}
			sum += v
		}
		if got := sum / n; got < c.mean-c.tol || got > c.mean+c.tol {
			t.Errorf("%s sample mean %v, want ~%v", c.spec.Type, got, c.mean)
		}
	}
}

func TestDistSpecRejects(t *testing.T) {
	bad := []DistSpec{
		{Type: "deterministic", Value: -1},
		{Type: "normal", Mean: -1},
		{Type: "lognormal", Mean: 0},
		{Type: "exponential", Mean: 0},
		{Type: "uniform", Lo: 4, Hi: 2},
		{Type: "pareto", Scale: 0, Alpha: 2},
		{Type: "pareto", Scale: 1, Alpha: 1},
		{Type: "mystery"},
	}
	for _, d := range bad {
		if _, err := d.Dist(); err == nil {
			t.Errorf("accepted %+v", d)
		}
	}
}

func TestLoad(t *testing.T) {
	path := filepath.Join(t.TempDir(), "exp.json")
	if err := os.WriteFile(path, []byte(minimal), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if e.Model.Name != "resnet101" {
		t.Errorf("model = %s", e.Model.Name)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
}
