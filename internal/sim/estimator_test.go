package sim

import (
	"math"
	"testing"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/stats"
)

// modeSim is stochasticSim with an explicit estimator mode.
func modeSim(t testing.TB, samples, workers int, seed uint64, mode EstimatorMode) *Simulator {
	t.Helper()
	s := spec.MustSHA(16, 2, 16, 2)
	prof := ModelTrainProfile{Model: model.ResNet50(), Batch: 512, GPUsPerNode: 4}
	cp := DefaultCloudProfile()
	cp.Overheads = cloud.Overheads{
		QueueDelay:  stats.Exponential{MeanValue: 5},
		InitLatency: stats.Normal{Mu: 15, Sigma: 3},
	}
	sm, err := New(s, prof, cp, samples, stats.NewRNG(seed), WithWorkers(workers), WithEstimator(mode))
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

// deterministicSim returns a simulator whose every latency source is a
// point mass: measured profile with zero straggler variance and constant
// provisioning overheads. No estimator draws any random number, so the
// two estimator modes must agree exactly.
func deterministicSim(t testing.TB, samples, workers int, mode EstimatorMode, billing cloud.BillingModel) *Simulator {
	t.Helper()
	s := spec.MustSHA(16, 2, 16, 2)
	sc, err := model.NewInterpolatedScaling([]int{1, 2, 4, 8, 16}, []float64{1, 1.9, 3.6, 6.5, 11})
	if err != nil {
		t.Fatal(err)
	}
	prof := MeasuredTrainProfile{BaseMean: 4, BaseStd: 0, Scaling: sc}
	cp := DefaultCloudProfile()
	cp.Pricing.Billing = billing
	cp.Overheads = cloud.Overheads{
		QueueDelay:  stats.Deterministic{Value: 5},
		InitLatency: stats.Deterministic{Value: 15},
	}
	sm, err := New(s, prof, cp, samples, stats.NewRNG(77), WithWorkers(workers), WithEstimator(mode))
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

func estimatorModes() []EstimatorMode {
	return []EstimatorMode{EstimatorSegment, EstimatorFull, EstimatorAnalytic}
}

// TestParseEstimator round-trips both flag spellings and rejects others.
func TestParseEstimator(t *testing.T) {
	for _, m := range estimatorModes() {
		got, err := ParseEstimator(m.String())
		if err != nil || got != m {
			t.Fatalf("ParseEstimator(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseEstimator("fast"); err == nil {
		t.Fatal("ParseEstimator accepted an unknown mode")
	}
}

// TestEstimatorModesDeterministicAcrossWorkers: the PR's core invariant
// holds in both estimator modes — for a fixed seed, Estimate is
// bit-identical at every worker count and across repeated calls on fresh
// and reused simulators.
func TestEstimatorModesDeterministicAcrossWorkers(t *testing.T) {
	for _, mode := range estimatorModes() {
		ref := modeSim(t, 40, 1, 42, mode)
		for _, plan := range testPlans(ref) {
			want, err := ref.Estimate(plan)
			if err != nil {
				t.Fatal(err)
			}
			if want.JCTStd == 0 {
				t.Fatalf("%v plan %v: degenerate estimate, test is vacuous", mode, plan)
			}
			for _, workers := range []int{1, 2, 8} {
				sm := modeSim(t, 40, workers, 42, mode)
				for run := 0; run < 2; run++ {
					got, err := sm.Estimate(plan)
					if err != nil {
						t.Fatal(err)
					}
					if got != want {
						t.Fatalf("%v plan %v workers=%d run=%d: %+v != serial %+v", mode, plan, workers, run, got, want)
					}
				}
			}
		}
	}
}

// TestEstimatorsAgreeExactlyUnderDeterministicLatencies: with point-mass
// latencies everywhere the segment estimator's recombined samples carry
// no randomness to diverge on, so both modes — which share the same
// compiled programs and recombination arithmetic — must return exactly
// equal estimates and breakdowns, under both billing models and for all
// plan shapes (static, shrinking, queued waves).
func TestEstimatorsAgreeExactlyUnderDeterministicLatencies(t *testing.T) {
	for _, billing := range []cloud.BillingModel{cloud.PerInstance, cloud.PerFunction} {
		seg := deterministicSim(t, 5, 2, EstimatorSegment, billing)
		full := deterministicSim(t, 5, 2, EstimatorFull, billing)
		for _, plan := range testPlans(seg) {
			se, err := seg.Estimate(plan)
			if err != nil {
				t.Fatal(err)
			}
			fe, err := full.Estimate(plan)
			if err != nil {
				t.Fatal(err)
			}
			if se != fe {
				t.Fatalf("billing %v plan %v: segment %+v != full %+v", billing, plan, se, fe)
			}
			if se.JCT <= 0 || se.Cost <= 0 {
				t.Fatalf("billing %v plan %v: degenerate estimate %+v", billing, plan, se)
			}
			sb, err := seg.Breakdown(plan)
			if err != nil {
				t.Fatal(err)
			}
			fb, err := full.Breakdown(plan)
			if err != nil {
				t.Fatal(err)
			}
			for i := range sb {
				if sb[i] != fb[i] {
					t.Fatalf("billing %v plan %v stage %d: segment %+v != full %+v", billing, plan, i, sb[i], fb[i])
				}
			}
		}
	}
}

// TestEstimatorsAgreeToMonteCarloTolerance: under stochastic latencies
// the two modes draw different streams, so they are distinct unbiased
// estimators of the same quantities; at a large sample count their means
// must agree to a few standard errors.
func TestEstimatorsAgreeToMonteCarloTolerance(t *testing.T) {
	const samples = 400
	seg := modeSim(t, samples, 4, 9, EstimatorSegment)
	full := modeSim(t, samples, 4, 9, EstimatorFull)
	for _, plan := range testPlans(seg) {
		se, err := seg.Estimate(plan)
		if err != nil {
			t.Fatal(err)
		}
		fe, err := full.Estimate(plan)
		if err != nil {
			t.Fatal(err)
		}
		// 5 standard errors of the larger spread, plus a small absolute
		// floor for near-deterministic components.
		jctTol := 5*math.Max(se.JCTStd, fe.JCTStd)/math.Sqrt(samples) + 1e-9
		costTol := 5*math.Max(se.CostStd, fe.CostStd)/math.Sqrt(samples) + 1e-9
		if d := math.Abs(se.JCT - fe.JCT); d > jctTol {
			t.Fatalf("plan %v: JCT means differ by %v (> %v): segment %v full %v", plan, d, jctTol, se.JCT, fe.JCT)
		}
		if d := math.Abs(se.Cost - fe.Cost); d > costTol {
			t.Fatalf("plan %v: cost means differ by %v (> %v): segment %v full %v", plan, d, costTol, se.Cost, fe.Cost)
		}
	}
}

// TestSegmentEstimatesPureAcrossCacheState: an estimate must not depend
// on what the segment and plan caches happen to hold — evaluating many
// other plans (sharing and evicting segments) between two estimates of
// the same plan must not change a bit, and a cold simulator must agree
// with a warm one.
func TestSegmentEstimatesPureAcrossCacheState(t *testing.T) {
	warm := modeSim(t, 30, 2, 13, EstimatorSegment)
	plan := testPlans(warm)[1]
	want, err := warm.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	stages := warm.Spec().NumStages()
	for g := 1; g <= 32; g++ {
		if _, err := warm.Estimate(Uniform(g, stages)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := warm.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("estimate changed with cache state: %+v != %+v", got, want)
	}
	cold := modeSim(t, 30, 2, 13, EstimatorSegment)
	cgot, err := cold.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if cgot != want {
		t.Fatalf("cold estimate %+v != warm %+v", cgot, want)
	}
}

// TestPlanKeyCollisionFree: Key is injective over plans that differ in
// any allocation or in stage count, and agrees exactly when Equal does.
func TestPlanKeyCollisionFree(t *testing.T) {
	plans := []Plan{
		NewPlan(1),
		NewPlan(1, 1),
		NewPlan(16, 8),
		NewPlan(8, 16),
		NewPlan(16, 8, 4),
		NewPlan(16, 8, 5),
		NewPlan(257, 8, 4), // multi-byte values must not collide with permutations
		NewPlan(1, 2, 8, 4),
		NewPlan(1, 2, 8, 5),
		Uniform(64, 4),
	}
	for i, a := range plans {
		for j, b := range plans {
			if (a.Key() == b.Key()) != a.Equal(b) {
				t.Fatalf("Key collision/mismatch between %v (#%d) and %v (#%d)", a, i, b, j)
			}
		}
	}
	if len(NewPlan(7, 9).Key()) != 8 {
		t.Fatalf("Key length %d, want 4 bytes per stage", len(NewPlan(7, 9).Key()))
	}
}

// TestPriceScheduleZeroAlloc pins the steady-state allocation count of
// the billing replay to zero under both billing models: with a warm
// births buffer, pricing a sample must not allocate.
func TestPriceScheduleZeroAlloc(t *testing.T) {
	for _, billing := range []cloud.BillingModel{cloud.PerInstance, cloud.PerFunction} {
		sm := deterministicSim(t, 8, 1, EstimatorSegment, billing)
		plan := testPlans(sm)[1]
		cp, err := sm.compile(plan)
		if err != nil {
			t.Fatal(err)
		}
		vecs := sm.sampleVectors(cp, plan)
		var births []float64
		_, _, births = sm.priceSchedule(cp, vecs, 0, births) // warm the buffer
		allocs := testing.AllocsPerRun(100, func() {
			_, _, births = sm.priceSchedule(cp, vecs, 1, births)
		})
		if allocs != 0 {
			t.Fatalf("billing %v: priceSchedule allocates %v per sample, want 0", billing, allocs)
		}
	}
}

// TestGraphSampleZeroAlloc pins the reference sampler: with a warm
// timings buffer, Graph.SampleInto over a full execution DAG allocates
// nothing per draw.
func TestGraphSampleZeroAlloc(t *testing.T) {
	sm := stochasticSim(t, 8, 1, 3)
	g, err := sm.BuildDAG(testPlans(sm)[1])
	if err != nil {
		t.Fatal(err)
	}
	rng := stats.NewRNG(5)
	buf, _ := g.SampleInto(rng, nil)
	allocs := testing.AllocsPerRun(100, func() {
		buf, _ = g.SampleInto(rng, buf)
	})
	if allocs != 0 {
		t.Fatalf("Graph.SampleInto allocates %v per draw, want 0", allocs)
	}
}

// TestSegmentCacheReusesAcrossPlans: two plans sharing a stage tuple
// must consult the profile only once for that tuple — the segment cache
// is what makes greedy candidate evaluation incremental.
func TestSegmentCacheReusesAcrossPlans(t *testing.T) {
	sm := modeSim(t, 10, 1, 21, EstimatorSegment)
	stages := sm.Spec().NumStages()
	if _, err := sm.Estimate(Uniform(16, stages)); err != nil {
		t.Fatal(err)
	}
	segsBefore, samplesBefore := sm.segs.len(), sm.segSamples.len()
	// Decrement only the final stage: every earlier (stage, alloc, prev)
	// tuple is unchanged, so exactly one new segment may be built.
	alloc := Uniform(16, stages).Alloc
	alloc[stages-1] = 8
	if _, err := sm.Estimate(Plan{Alloc: alloc}); err != nil {
		t.Fatal(err)
	}
	if got := sm.segs.len(); got != segsBefore+1 {
		t.Fatalf("segment cache grew from %d to %d, want exactly one new segment", segsBefore, got)
	}
	if got := sm.segSamples.len(); got != samplesBefore+1 {
		t.Fatalf("sample cache grew from %d to %d, want exactly one new vector", samplesBefore, got)
	}
}
