package sim

import (
	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/stats"
)

// This file is the analytic (moment-propagation) estimator: the same
// segment decomposition and billing replay as the Monte-Carlo paths, but
// carrying (mean, variance) pairs instead of sample vectors. A warm
// evaluation touches no RNG, draws no samples, and allocates nothing —
// it is the sub-microsecond scoring pass the planner's batched frontier
// pruning is built on.

// segMoment is the analytic counterpart of a segment's sample vector:
// the moments of its zero-based duration, its SCALE finish (zero when
// the cluster does not grow into the stage), and its total training
// GPU-slot seconds. ok=false marks a segment whose latencies lack finite
// moments; such plans fall back to Monte-Carlo.
type segMoment struct {
	dur, scaleFin, trainSec stats.Moment
	ok                      bool
}

// segmentMoments returns the segment's analytic moments, filling and
// caching them on a miss. The value is a pure function of the segment
// (itself a pure function of the simulator configuration and the key),
// so benign double computation under concurrent misses is harmless.
// sc is the caller's scratch for the propagation pass.
//
//rbvet:pure
func (s *Simulator) segmentMoments(sg *segment, sc *dag.MomentScratch) segMoment {
	s.mu.Lock()
	v, ok := s.segMoments.get(sg.key)
	s.mu.Unlock()
	if ok {
		return v
	}
	mk, okm := sg.prog.MomentsInto(sc)
	v = segMoment{ok: okm}
	if okm {
		v.dur = mk
		if sg.scaleIdx >= 0 {
			v.scaleFin = sc.Finish(sg.scaleIdx)
		}
		// Training GPU-time is the sum of the (independent) train-node
		// latencies; moments add.
		for i := sg.trainLo; i < sg.trainHi; i++ {
			v.trainSec = v.trainSec.AddIndep(sc.Latency(i))
		}
	}
	s.mu.Lock()
	s.segMoments.put(sg.key, v)
	s.mu.Unlock()
	return v
}

// birthGroup is one growth event on the analytic billing stack: count
// instances born at stage-prefix moment pre plus the stage's SCALE
// finish sf. Instances of one group share a single (random) lifetime, so
// their charges are perfectly correlated and sum by scaling.
type birthGroup struct {
	pre, sf stats.Moment
	count   int
}

// AnalyticEval evaluates plans analytically against one Simulator. It
// owns the propagation scratch and the billing stack, so it is cheap to
// reuse and must not be shared across goroutines concurrently; create
// one per worker (NewAnalyticEval) or let Simulator.Estimate pool them.
type AnalyticEval struct {
	sim    *Simulator
	sc     dag.MomentScratch
	groups []birthGroup
	moms   []segMoment
	// plans is a per-evaluator view of the simulator's plan compilation,
	// keyed by the same encoding as Plan.Key but probed through a reused
	// byte buffer so a warm evaluation allocates nothing. It only ever
	// holds pointers the shared LRU also produced (pure values), and its
	// size is bounded by the frontiers one evaluator scores.
	plans map[string]*compiledPlan
	// scores memoizes whole evaluations under the same key: Estimate is
	// deterministic, so a repeat call returns the cached (Estimate, ok)
	// pair from one map probe without touching the moment caches at all.
	// Both maps are dropped together past maxAnalyticCached entries, a
	// backstop no planner frontier approaches.
	scores map[string]analyticScore
	key    []byte
}

// analyticScore is one memoized Estimate outcome (errors are not cached;
// they only arise from invalid plans on the cold path).
type analyticScore struct {
	est Estimate
	ok  bool
}

// maxAnalyticCached bounds the per-evaluator plan and score maps.
const maxAnalyticCached = 1 << 14

// NewAnalyticEval returns a fresh analytic evaluator bound to s.
func (s *Simulator) NewAnalyticEval() *AnalyticEval {
	return &AnalyticEval{sim: s}
}

// AcquireAnalyticEval returns an analytic evaluator from the simulator's
// pool, creating one when none is idle. Pair it with ReleaseAnalyticEval
// so the evaluator's warm caches (compiled plans, memoized scores) carry
// over to the next acquirer — this is what keeps repeated planner
// searches over one simulator at map-probe cost. Evaluations are pure,
// so reuse can never change a result.
func (s *Simulator) AcquireAnalyticEval() *AnalyticEval {
	if e, _ := s.anaPool.Get().(*AnalyticEval); e != nil {
		return e
	}
	return s.NewAnalyticEval()
}

// ReleaseAnalyticEval returns an evaluator obtained from
// AcquireAnalyticEval to the pool. Releasing nil is a no-op.
func (s *Simulator) ReleaseAnalyticEval(e *AnalyticEval) {
	if e != nil {
		s.anaPool.Put(e)
	}
}

// Estimate analytically predicts JCT and cost for the plan: E[JCT] and
// E[cost] in Estimate.JCT/Cost, with JCTStd/CostStd the analytic
// standard deviations of the same distributions the Monte-Carlo modes
// sample. ok=false means some latency lacks finite moments and the
// caller should fall back to a sampling estimator; the error mirrors
// Simulator.Estimate's plan validation.
//
// The evaluation is exact under deterministic latencies and
// moment-matched otherwise (see dag.Program.MomentsInto); CostStd
// additionally treats per-group instance charges as independent, which
// the validation tests bound. It is deterministic — no RNG is consulted
// — and a warm call (cached plan and segment moments) allocates nothing.
func (e *AnalyticEval) Estimate(p Plan) (Estimate, bool, error) {
	e.key = appendPlanKey(e.key[:0], p)
	if s, hit := e.scores[string(e.key)]; hit { // no allocation: direct map probe
		return s.est, s.ok, nil
	}
	cp := e.plans[string(e.key)]
	if cp == nil {
		var err error
		cp, err = e.sim.compile(p)
		if err != nil {
			return Estimate{}, false, err
		}
		if e.plans == nil {
			e.plans = make(map[string]*compiledPlan)
		}
		e.plans[string(e.key)] = cp
	}
	if cap(e.moms) < len(cp.segs) {
		e.moms = make([]segMoment, len(cp.segs))
	}
	moms := e.moms[:len(cp.segs)]
	sc := analyticScore{}
	for i, sg := range cp.segs {
		moms[i] = e.sim.segmentMoments(sg, &e.sc)
		if !moms[i].ok {
			e.memoize(sc)
			return Estimate{}, false, nil
		}
	}
	jct, cost := e.price(cp, moms)
	sc = analyticScore{est: Estimate{
		JCT: jct.Mean, JCTStd: jct.Std(),
		Cost: cost.Mean, CostStd: cost.Std(),
	}, ok: true}
	e.memoize(sc)
	return sc.est, sc.ok, nil
}

// memoize records the just-computed outcome for the plan key currently
// in e.key, resetting both per-evaluator maps if they have grown past
// the backstop bound.
func (e *AnalyticEval) memoize(sc analyticScore) {
	if e.scores == nil {
		e.scores = make(map[string]analyticScore)
	} else if len(e.scores) >= maxAnalyticCached {
		e.scores = make(map[string]analyticScore)
		e.plans = nil
	}
	e.scores[string(e.key)] = sc
}

// EstimateBatch scores a whole candidate frontier in one pass over the
// shared cached segment moments, filling ests[i] and oks[i] for plans[i]
// (all three slices must have equal length). With warm caches the loop
// allocates nothing and each candidate costs microseconds — this is the
// planner's batch-scoring primitive.
func (e *AnalyticEval) EstimateBatch(plans []Plan, ests []Estimate, oks []bool) error {
	for i, p := range plans {
		est, ok, err := e.Estimate(p)
		if err != nil {
			return err
		}
		ests[i], oks[i] = est, ok
	}
	return nil
}

// appendPlanKey appends the Plan.Key encoding (4 big-endian bytes per
// stage) to dst, reusing its capacity.
func appendPlanKey(dst []byte, p Plan) []byte {
	for _, a := range p.Alloc {
		dst = append(dst, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
	}
	return dst
}

// price mirrors priceSchedule with moments: stage durations chain into
// the JCT by independent summation; per-instance billing replays LIFO
// lifetimes (a group's lifetime is the stage-prefix difference minus its
// own SCALE finish — an independent-prefix subtraction, since a stage's
// duration decomposes as its SCALE finish plus an independent remainder)
// with the minimum charge applied via the Gaussian clamp; per-function
// billing sums training GPU-seconds.
func (e *AnalyticEval) price(cp *compiledPlan, moms []segMoment) (jct, cost stats.Moment) {
	pr := e.sim.cloud.Pricing
	cost = stats.Moment{Mean: float64(cp.maxInstances) * pr.DataIngressCost(e.sim.cloud.DatasetGB)}

	if pr.Billing == cloud.PerFunction {
		pg := e.sim.cloud.Instance.PricePerGPUSecond(pr.Market)
		for i, sg := range cp.segs {
			jct = jct.AddIndep(moms[i].dur)
			cost = cost.AddIndep(moms[i].trainSec.Scale(float64(sg.trainGPUs) * pg))
		}
		return jct, cost
	}

	perHour := e.sim.cloud.Instance.PricePerHour(pr.Market)
	groups := e.groups[:0]
	alive := 0
	var pre stats.Moment // absolute start moment of the current stage
	for i, sg := range cp.segs {
		want := sg.instances
		if want > alive {
			sf := stats.Moment{}
			if sg.scaleIdx >= 0 {
				sf = moms[i].scaleFin
			}
			groups = append(groups, birthGroup{pre: pre, sf: sf, count: want - alive})
			alive = want
		} else {
			for alive > want {
				top := &groups[len(groups)-1]
				n := top.count
				if alive-want < n {
					n = alive - want
				}
				cost = cost.AddIndep(e.charge(*top, pre, n, perHour))
				top.count -= n
				alive -= n
				if top.count == 0 {
					groups = groups[:len(groups)-1]
				}
			}
		}
		pre = pre.AddIndep(moms[i].dur)
	}
	for _, g := range groups {
		cost = cost.AddIndep(e.charge(g, pre, g.count, perHour))
	}
	e.groups = groups[:0]
	return pre, cost
}

// charge bills n instances of one birth group dying at the stage-prefix
// moment death: lifetime = (death − birth prefix) − SCALE finish, both
// independent-prefix subtractions, clamped below by the minimum charge.
// The n lifetimes are one shared random variable, so the group total
// scales linearly (mean ×n, std ×n).
func (e *AnalyticEval) charge(g birthGroup, death stats.Moment, n int, perHour float64) stats.Moment {
	life := death.SubIndepPrefix(g.pre).SubIndepPrefix(g.sf)
	billed := stats.ClampBelow(life, e.sim.cloud.Pricing.MinChargeSeconds)
	return billed.Scale(float64(n) / 3600 * perHour)
}
