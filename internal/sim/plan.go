// Package sim predicts the completion time and dollar cost of executing a
// hyperparameter tuning job under a given resource allocation plan (§4.2).
//
// The simulator synthesizes a DAG-based execution model from the
// experiment specification and the plan, parameterized by a profiled
// training-latency scaling function and a cloud profile (provisioning
// overheads, instance pricing, billing granularity, data price). Repeated
// critical-path sampling over the DAG (Algorithm 1) yields JCT estimates;
// replaying each sampled schedule against the billing model yields cost
// estimates. The planner (package planner) uses these estimates as a black
// box to search the plan space.
package sim

import (
	"encoding/binary"
	"fmt"
	"strconv"
	"strings"
)

// Plan is an elastic resource allocation plan: Alloc[i] is the number of
// GPUs allocated to the job during stage i, shared fairly among the
// stage's running trials.
type Plan struct {
	Alloc []int
}

// NewPlan returns a plan with the given per-stage allocations.
func NewPlan(alloc ...int) Plan { return Plan{Alloc: append([]int(nil), alloc...)} }

// Uniform returns a static plan allocating gpus to each of stages stages.
func Uniform(gpus, stages int) Plan {
	a := make([]int, stages)
	for i := range a {
		a[i] = gpus
	}
	return Plan{Alloc: a}
}

// Clone returns a deep copy of the plan.
func (p Plan) Clone() Plan { return Plan{Alloc: append([]int(nil), p.Alloc...)} }

// Stages returns the number of stages the plan covers.
func (p Plan) Stages() int { return len(p.Alloc) }

// Max returns the largest per-stage allocation (the peak cluster size in
// GPUs). Zero for an empty plan.
func (p Plan) Max() int {
	m := 0
	for _, a := range p.Alloc {
		if a > m {
			m = a
		}
	}
	return m
}

// IsStatic reports whether every stage receives the same allocation.
func (p Plan) IsStatic() bool {
	for i := 1; i < len(p.Alloc); i++ {
		if p.Alloc[i] != p.Alloc[0] {
			return false
		}
	}
	return true
}

// Validate checks the plan against a stage count: one positive allocation
// per stage.
func (p Plan) Validate(stages int) error {
	if len(p.Alloc) != stages {
		return fmt.Errorf("sim: plan covers %d stages, spec has %d", len(p.Alloc), stages)
	}
	for i, a := range p.Alloc {
		if a < 1 {
			return fmt.Errorf("sim: stage %d allocated %d GPUs", i, a)
		}
	}
	return nil
}

// String renders the plan as "(8, 8, 4, 2)".
func (p Plan) String() string {
	parts := make([]string, len(p.Alloc))
	for i, a := range p.Alloc {
		parts[i] = fmt.Sprint(a)
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// Key returns a compact, collision-free encoding of the allocation vector
// for use as a map or cache key: each allocation as a fixed-width
// big-endian 32-bit word, so two plans share a Key iff they are Equal
// (the length distinguishes stage counts). Unlike String it performs no
// formatting and its size is exactly 4 bytes per stage.
//
//rbvet:pure
func (p Plan) Key() string {
	b := make([]byte, 4*len(p.Alloc))
	for i, a := range p.Alloc {
		binary.BigEndian.PutUint32(b[i*4:], uint32(a))
	}
	return string(b)
}

// Equal reports whether two plans are identical.
func (p Plan) Equal(q Plan) bool {
	if len(p.Alloc) != len(q.Alloc) {
		return false
	}
	for i := range p.Alloc {
		if p.Alloc[i] != q.Alloc[i] {
			return false
		}
	}
	return true
}

// Suffix returns a copy of the plan's allocations for stages
// from..Stages()-1, aligned with spec.ExperimentSpec.Suffix. It panics if
// from is out of [0, Stages()).
func (p Plan) Suffix(from int) Plan {
	if from < 0 || from >= len(p.Alloc) {
		panic(fmt.Sprintf("sim: plan suffix from stage %d of %d", from, len(p.Alloc)))
	}
	return Plan{Alloc: append([]int(nil), p.Alloc[from:]...)}
}

// Splice returns a copy of p whose allocations for stages
// from..Stages()-1 are replaced by tail — the replanner's plan surgery:
// executed and executing stages keep their allocations, only the future is
// rewritten. It panics unless tail covers exactly the replaced stages.
func (p Plan) Splice(from int, tail Plan) Plan {
	if from < 0 || from > len(p.Alloc) {
		panic(fmt.Sprintf("sim: splice at stage %d of %d", from, len(p.Alloc)))
	}
	if got, want := len(tail.Alloc), len(p.Alloc)-from; got != want {
		panic(fmt.Sprintf("sim: splice tail covers %d stages, want %d", got, want))
	}
	out := p.Clone()
	copy(out.Alloc[from:], tail.Alloc)
	return out
}

// ParsePlan parses a comma-separated allocation list such as
// "16, 10, 12, 4" into a Plan.
func ParsePlan(s string) (Plan, error) {
	parts := strings.Split(s, ",")
	alloc := make([]int, 0, len(parts))
	for _, p := range parts {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return Plan{}, fmt.Errorf("sim: plan element %q: %w", p, err)
		}
		if v < 1 {
			return Plan{}, fmt.Errorf("sim: plan element %d < 1", v)
		}
		alloc = append(alloc, v)
	}
	if len(alloc) == 0 {
		return Plan{}, fmt.Errorf("sim: empty plan %q", s)
	}
	return Plan{Alloc: alloc}, nil
}

// GPUsPerTrial returns the fair per-trial allocation for a stage with the
// given trial count: alloc/trials when the stage has at least one GPU per
// trial (the planner keeps alloc a multiple of trials), otherwise 1 GPU
// with trials queueing for slots.
func GPUsPerTrial(alloc, trials int) int {
	if alloc >= trials {
		return alloc / trials
	}
	return 1
}
