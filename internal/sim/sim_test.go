package sim

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/stats"
)

// testCloud returns a cloud profile with deterministic overheads for exact
// assertions.
func testCloud(billing cloud.BillingModel, queue, initLat float64) CloudProfile {
	cp := DefaultCloudProfile()
	cp.Pricing.Billing = billing
	cp.Pricing.MinChargeSeconds = 0
	cp.Overheads = cloud.Overheads{
		QueueDelay:  stats.Deterministic{Value: queue},
		InitLatency: stats.Deterministic{Value: initLat},
	}
	return cp
}

// constProfile has a fixed per-iteration latency regardless of allocation —
// convenient for exact-schedule tests.
type constProfile struct{ v float64 }

func (c constProfile) IterDist(int) stats.Dist { return stats.Deterministic{Value: c.v} }

// linearProfile scales perfectly: latency = base/gpus.
type linearProfile struct{ base float64 }

func (l linearProfile) IterDist(g int) stats.Dist {
	return stats.Deterministic{Value: l.base / float64(g)}
}

func mustSim(t *testing.T, s *spec.ExperimentSpec, p TrainProfile, cp CloudProfile, samples int) *Simulator {
	t.Helper()
	sm, err := New(s, p, cp, samples, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

func TestNewValidation(t *testing.T) {
	good := spec.MustSHA(8, 1, 4, 2)
	cp := DefaultCloudProfile()
	if _, err := New(good, nil, cp, 0, nil); err == nil {
		t.Error("nil profile accepted")
	}
	badCP := cp
	badCP.DatasetGB = -1
	if _, err := New(good, constProfile{1}, badCP, 0, nil); err == nil {
		t.Error("bad cloud profile accepted")
	}
	if _, err := New(good, constProfile{1}, cp, 0, nil); err != nil {
		t.Errorf("valid inputs rejected: %v", err)
	}
}

func TestPlanHelpers(t *testing.T) {
	p := NewPlan(8, 4, 2)
	if p.Stages() != 3 || p.Max() != 8 || p.IsStatic() {
		t.Errorf("plan helpers wrong: %+v", p)
	}
	if Uniform(4, 3).IsStatic() != true {
		t.Error("uniform plan not static")
	}
	q := p.Clone()
	q.Alloc[0] = 99
	if p.Alloc[0] != 8 {
		t.Error("Clone shares storage")
	}
	if !p.Equal(NewPlan(8, 4, 2)) || p.Equal(NewPlan(8, 4)) || p.Equal(NewPlan(8, 4, 3)) {
		t.Error("Equal wrong")
	}
	if p.String() != "(8, 4, 2)" {
		t.Errorf("String = %q", p.String())
	}
}

func TestPlanSuffixSplice(t *testing.T) {
	p := NewPlan(8, 4, 2, 1)
	s := p.Suffix(2)
	if !s.Equal(NewPlan(2, 1)) {
		t.Errorf("Suffix(2) = %v", s)
	}
	s.Alloc[0] = 99
	if p.Alloc[2] != 2 {
		t.Error("Suffix shares storage")
	}
	q := p.Splice(2, NewPlan(16, 16))
	if !q.Equal(NewPlan(8, 4, 16, 16)) {
		t.Errorf("Splice = %v", q)
	}
	if !p.Equal(NewPlan(8, 4, 2, 1)) {
		t.Error("Splice mutated the receiver")
	}
	if !p.Splice(0, NewPlan(1, 1, 1, 1)).Equal(NewPlan(1, 1, 1, 1)) {
		t.Error("full-plan splice wrong")
	}
	for _, f := range []func(){
		func() { p.Suffix(-1) },
		func() { p.Suffix(4) },
		func() { p.Splice(1, NewPlan(9)) },
		func() { p.Splice(5, NewPlan()) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("out-of-range suffix/splice did not panic")
				}
			}()
			f()
		}()
	}
}

// normalProfile has a fixed Normal latency regardless of allocation.
type normalProfile struct{ mu, sigma float64 }

func (p normalProfile) IterDist(int) stats.Dist { return stats.Normal{Mu: p.mu, Sigma: p.sigma} }

func TestScaledTrainProfile(t *testing.T) {
	det := ScaledTrainProfile{Base: constProfile{10}, Factor: 2}
	d, ok := det.IterDist(4).(stats.Deterministic)
	if !ok || d.Value != 20 {
		t.Errorf("scaled deterministic = %#v, want Deterministic{20}", det.IterDist(4))
	}
	norm := ScaledTrainProfile{Base: normalProfile{mu: 10, sigma: 2}, Factor: 3}
	n, ok := norm.IterDist(1).(stats.Normal)
	if !ok || n.Mu != 30 || n.Sigma != 6 {
		t.Errorf("scaled normal = %#v, want Normal{30, 6}", norm.IterDist(1))
	}
}

func TestPlanValidate(t *testing.T) {
	if err := NewPlan(1, 2).Validate(3); err == nil {
		t.Error("wrong stage count accepted")
	}
	if err := NewPlan(1, 0).Validate(2); err == nil {
		t.Error("zero allocation accepted")
	}
	if err := NewPlan(1, 2).Validate(2); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

func TestGPUsPerTrial(t *testing.T) {
	cases := []struct{ alloc, trials, want int }{
		{8, 4, 2}, {4, 4, 1}, {2, 4, 1}, {9, 4, 2}, {16, 2, 8},
	}
	for _, c := range cases {
		if got := GPUsPerTrial(c.alloc, c.trials); got != c.want {
			t.Errorf("GPUsPerTrial(%d,%d) = %d, want %d", c.alloc, c.trials, got, c.want)
		}
	}
}

func TestBuildDAGStructure(t *testing.T) {
	s := spec.Empty().AddStage(4, 10).AddStage(2, 20)
	sm := mustSim(t, s, constProfile{1}, testCloud(cloud.PerInstance, 5, 15), 4)
	g, err := sm.BuildDAG(NewPlan(4, 2))
	if err != nil {
		t.Fatal(err)
	}
	var counts [4]int
	for _, n := range g.Nodes() {
		counts[n.Kind]++
	}
	// 4 GPUs on p3.8xlarge = 1 instance: one SCALE, one INIT for stage 0;
	// stage 1 shrinks so no more scaling. 4+2 TRAIN nodes, 2 SYNCs.
	if counts[dag.Scale] != 1 || counts[dag.InitInstance] != 1 {
		t.Errorf("scale/init = %d/%d, want 1/1", counts[dag.Scale], counts[dag.InitInstance])
	}
	if counts[dag.Train] != 6 {
		t.Errorf("train = %d, want 6", counts[dag.Train])
	}
	if counts[dag.Sync] != 2 {
		t.Errorf("sync = %d, want 2", counts[dag.Sync])
	}
}

func TestBuildDAGScaleUpMidJob(t *testing.T) {
	// Growing allocation forces a second SCALE with the right number of
	// INIT nodes (p3.8xlarge: 4 GPUs per instance).
	s := spec.Empty().AddStage(2, 1).AddStage(2, 1)
	sm := mustSim(t, s, constProfile{1}, testCloud(cloud.PerInstance, 0, 0), 4)
	g, err := sm.BuildDAG(NewPlan(4, 16)) // 1 instance -> 4 instances
	if err != nil {
		t.Fatal(err)
	}
	scales, inits := 0, 0
	for _, n := range g.Nodes() {
		switch n.Kind {
		case dag.Scale:
			scales++
		case dag.InitInstance:
			inits++
		}
	}
	if scales != 2 {
		t.Errorf("scales = %d, want 2", scales)
	}
	if inits != 4 { // 1 + 3
		t.Errorf("inits = %d, want 4", inits)
	}
}

func TestEstimateJCTExact(t *testing.T) {
	// Deterministic everything: JCT must be exact.
	// Stage 0: 4 trials, 10 iters, 4 GPUs -> 1 GPU each, 1 s/iter = 10 s.
	// Stage 1: 2 trials, 20 iters, 4 GPUs -> 2 GPUs each, still 1 s/iter
	// under constProfile = 20 s. Plus queue 5 + init 15 up front.
	s := spec.Empty().AddStage(4, 10).AddStage(2, 20)
	sm := mustSim(t, s, constProfile{1}, testCloud(cloud.PerInstance, 5, 15), 3)
	est, err := sm.Estimate(NewPlan(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	want := 5.0 + 15 + 10 + 20
	if math.Abs(est.JCT-want) > 1e-9 {
		t.Fatalf("JCT = %v, want %v", est.JCT, want)
	}
	if est.JCTStd != 0 {
		t.Fatalf("JCTStd = %v, want 0 for deterministic job", est.JCTStd)
	}
}

func TestEstimateSerialQueueing(t *testing.T) {
	// 4 trials on 2 GPUs: two waves of serial execution.
	s := spec.Empty().AddStage(4, 10)
	sm := mustSim(t, s, constProfile{1}, testCloud(cloud.PerInstance, 0, 0), 2)
	est, err := sm.Estimate(NewPlan(2))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.JCT-20) > 1e-9 {
		t.Fatalf("JCT = %v, want 20 (two waves)", est.JCT)
	}
}

func TestEstimatePerInstanceCostExact(t *testing.T) {
	// One p3.8xlarge (4 GPUs) for the whole 30 s job, zero overheads.
	s := spec.Empty().AddStage(4, 10).AddStage(2, 20)
	cp := testCloud(cloud.PerInstance, 0, 0)
	sm := mustSim(t, s, constProfile{1}, cp, 2)
	est, err := sm.Estimate(NewPlan(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	want := 30.0 / 3600 * cp.Instance.OnDemandPerHour
	if math.Abs(est.Cost-want) > 1e-9 {
		t.Fatalf("cost = %v, want %v", est.Cost, want)
	}
}

func TestEstimatePerInstanceShrinkBillsLIFO(t *testing.T) {
	// Stage 0 uses 8 GPUs (2 instances) for 10 s, stage 1 uses 4 GPUs
	// (1 instance) for 20 s: cost = 2*10s + 1*20s of instance time.
	s := spec.Empty().AddStage(8, 10).AddStage(1, 20)
	cp := testCloud(cloud.PerInstance, 0, 0)
	sm := mustSim(t, s, linearProfile{1}, cp, 2)
	// Stage 0: 8 trials at 1 GPU, 10 iters, 1 s/iter = 10 s.
	// Stage 1: 1 trial at 4 GPUs, 20 iters at 0.25 s = 5 s.
	est, err := sm.Estimate(NewPlan(8, 4))
	if err != nil {
		t.Fatal(err)
	}
	wantJCT := 15.0
	if math.Abs(est.JCT-wantJCT) > 1e-9 {
		t.Fatalf("JCT = %v, want %v", est.JCT, wantJCT)
	}
	wantCost := (2*10.0 + 1*5.0) / 3600 * cp.Instance.OnDemandPerHour
	if math.Abs(est.Cost-wantCost) > 1e-9 {
		t.Fatalf("cost = %v, want %v", est.Cost, wantCost)
	}
}

func TestEstimatePerFunctionCheaperUnderIdle(t *testing.T) {
	// With heavy stragglers, per-function billing must be cheaper than
	// per-instance (Figure 9's mechanism).
	m := model.ResNet50()
	m.IterNoiseStd = 2.0
	prof := ModelTrainProfile{Model: m, Batch: 512, GPUsPerNode: 4}
	s := spec.MustSHA(16, 4, 32, 2)

	perInst := testCloud(cloud.PerInstance, 0, 0)
	perFn := testCloud(cloud.PerFunction, 0, 0)
	plan := Uniform(16, s.NumStages())

	smI := mustSim(t, s, prof, perInst, 50)
	smF := mustSim(t, s, prof, perFn, 50)
	estI, err := smI.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	estF, err := smF.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if estF.Cost >= estI.Cost {
		t.Fatalf("per-function %v not cheaper than per-instance %v", estF.Cost, estI.Cost)
	}
}

func TestEstimateDataIngress(t *testing.T) {
	s := spec.Empty().AddStage(4, 10)
	cp := testCloud(cloud.PerInstance, 0, 0)
	cp.Pricing.DataPricePerGB = 0.01
	cp.DatasetGB = 150
	sm := mustSim(t, s, constProfile{1}, cp, 2)
	est, err := sm.Estimate(NewPlan(4)) // 1 instance
	if err != nil {
		t.Fatal(err)
	}
	computeOnly := 10.0 / 3600 * cp.Instance.OnDemandPerHour
	wantData := 1.5
	if math.Abs(est.Cost-(computeOnly+wantData)) > 1e-9 {
		t.Fatalf("cost = %v, want %v", est.Cost, computeOnly+wantData)
	}
}

func TestEstimateMinimumCharge(t *testing.T) {
	// A 10-second job on one instance is billed 60 s.
	s := spec.Empty().AddStage(4, 10)
	cp := testCloud(cloud.PerInstance, 0, 0)
	cp.Pricing.MinChargeSeconds = 60
	sm := mustSim(t, s, constProfile{1}, cp, 2)
	est, err := sm.Estimate(NewPlan(4))
	if err != nil {
		t.Fatal(err)
	}
	want := 60.0 / 3600 * cp.Instance.OnDemandPerHour
	if math.Abs(est.Cost-want) > 1e-9 {
		t.Fatalf("cost = %v, want %v", est.Cost, want)
	}
}

func TestEstimateRejectsBadPlan(t *testing.T) {
	s := spec.Empty().AddStage(4, 10)
	sm := mustSim(t, s, constProfile{1}, testCloud(cloud.PerInstance, 0, 0), 2)
	if _, err := sm.Estimate(NewPlan(4, 4)); err == nil {
		t.Error("plan with wrong stage count accepted")
	}
	if _, err := sm.Estimate(NewPlan(0)); err == nil {
		t.Error("plan with zero alloc accepted")
	}
}

func TestElasticCheaperThanStaticWhenSublinear(t *testing.T) {
	// The paper's core claim: for a sub-linearly scaling model and a
	// front-loaded job, shrinking the cluster as trials are pruned is
	// cheaper than holding the static cluster, at comparable JCT.
	prof := ModelTrainProfile{Model: model.ResNet50(), Batch: 512, GPUsPerNode: 4}
	s := spec.MustSHA(64, 4, 508, 2)
	cp := testCloud(cloud.PerInstance, 0, 0)
	sm := mustSim(t, s, prof, cp, 30)

	static := Uniform(64, s.NumStages())
	alloc := make([]int, s.NumStages())
	for i := 0; i < s.NumStages(); i++ {
		a := s.Stage(i).Trials // one GPU per trial
		if a > 64 {
			a = 64
		}
		alloc[i] = a
	}
	elasticPlan := Plan{Alloc: alloc}

	estStatic, err := sm.Estimate(static)
	if err != nil {
		t.Fatal(err)
	}
	estElastic, err := sm.Estimate(elasticPlan)
	if err != nil {
		t.Fatal(err)
	}
	if estElastic.Cost >= estStatic.Cost {
		t.Fatalf("elastic %v not cheaper than static %v", estElastic.Cost, estStatic.Cost)
	}
}

func TestStaticClusterJCTMonotone(t *testing.T) {
	prof := ModelTrainProfile{Model: model.ResNet50(), Batch: 512, GPUsPerNode: 4}
	s := spec.MustSHA(16, 4, 32, 2)
	sm := mustSim(t, s, prof, testCloud(cloud.PerInstance, 0, 0), 2)
	prev := math.Inf(1)
	for _, g := range []int{1, 2, 4, 8, 16, 32} {
		jct := sm.StaticClusterJCT(g)
		if jct > prev+1e-9 {
			t.Errorf("JCT grew with more GPUs at %d: %v > %v", g, jct, prev)
		}
		prev = jct
	}
}

func TestSumItersCollapse(t *testing.T) {
	r := stats.NewRNG(1)
	// Deterministic collapses exactly.
	d := sumIters(stats.Deterministic{Value: 2}, 10)
	if v := d.Sample(r); v != 20 {
		t.Errorf("det sum sample %v, want 20", v)
	}
	// Normal collapses analytically: mean n*mu, std sqrt(n)*sigma.
	n := sumIters(stats.Normal{Mu: 3, Sigma: 1}, 100).(stats.Normal)
	if n.Mu != 300 || math.Abs(n.Sigma-10) > 1e-12 {
		t.Errorf("normal sum = %+v", n)
	}
	// Other distributions fall back to summing draws.
	e := sumIters(stats.Exponential{MeanValue: 1}, 50)
	if math.Abs(e.Mean()-50) > 1e-9 {
		t.Errorf("exp sum mean %v", e.Mean())
	}
	var total float64
	for i := 0; i < 2000; i++ {
		total += e.Sample(r)
	}
	if got := total / 2000; math.Abs(got-50) > 2 {
		t.Errorf("exp sum sample mean %v, want ~50", got)
	}
}

func TestModelTrainProfileUsesNodeSpread(t *testing.T) {
	m := model.ResNet50()
	m.IterNoiseStd = 0
	within := ModelTrainProfile{Model: m, Batch: 512, GPUsPerNode: 8}
	across := ModelTrainProfile{Model: m, Batch: 512, GPUsPerNode: 4}
	// 8 GPUs: single node at 8/node, two nodes at 4/node.
	if within.IterDist(8).Mean() >= across.IterDist(8).Mean() {
		t.Error("crossing nodes did not slow iteration")
	}
}

func TestMeasuredTrainProfile(t *testing.T) {
	sc, err := model.NewInterpolatedScaling([]int{1, 2, 4}, []float64{1, 1.9, 3.6})
	if err != nil {
		t.Fatal(err)
	}
	p := MeasuredTrainProfile{BaseMean: 4, BaseStd: 0.4, Scaling: sc}
	d := p.IterDist(4)
	if math.Abs(d.Mean()-4.0/3.6) > 1e-9 {
		t.Errorf("measured mean %v", d.Mean())
	}
	p.BaseStd = 0
	if _, ok := p.IterDist(2).(stats.Deterministic); !ok {
		t.Error("zero-std measured profile not deterministic")
	}
}

// Property: for any SHA job and any feasible static allocation, estimated
// cost and JCT are positive and finite, and the DAG has one SYNC per
// stage.
func TestQuickEstimateSane(t *testing.T) {
	prof := ModelTrainProfile{Model: model.ResNet50(), Batch: 512, GPUsPerNode: 4}
	f := func(nRaw, gRaw uint8, seed uint64) bool {
		n := int(nRaw%32) + 1
		gpus := int(gRaw%32) + 1
		s, err := spec.SHA(spec.SHAParams{N: n, R: 2, MaxR: 16, Eta: 2})
		if err != nil {
			return false
		}
		sm, err := New(s, prof, testCloud(cloud.PerInstance, 1, 2), 3, stats.NewRNG(seed))
		if err != nil {
			return false
		}
		est, err := sm.Estimate(Uniform(gpus, s.NumStages()))
		if err != nil {
			return false
		}
		if !(est.JCT > 0) || !(est.Cost > 0) || math.IsInf(est.JCT, 0) || math.IsInf(est.Cost, 0) {
			return false
		}
		g, err := sm.BuildDAG(Uniform(gpus, s.NumStages()))
		if err != nil {
			return false
		}
		syncs := 0
		for _, nd := range g.Nodes() {
			if nd.Kind == dag.Sync {
				syncs++
			}
		}
		return syncs == s.NumStages()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("16, 10, 12, 4")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(NewPlan(16, 10, 12, 4)) {
		t.Fatalf("parsed %v", p)
	}
	// Trailing commas and whitespace tolerated.
	p, err = ParsePlan(" 8,4, ")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(NewPlan(8, 4)) {
		t.Fatalf("parsed %v", p)
	}
	for _, bad := range []string{"", "a,b", "4,0", "-1", ",,"} {
		if _, err := ParsePlan(bad); err == nil {
			t.Errorf("ParsePlan(%q) accepted", bad)
		}
	}
}
