package sim

import (
	"repro/internal/cloud"
	"repro/internal/stats"
)

// StageEstimate decomposes a plan prediction into per-stage terms: where
// the time goes and where the money goes. Useful for inspecting why the
// planner prefers one plan over another (cmd/rbplan -breakdown).
type StageEstimate struct {
	// Stage is the 0-based stage index.
	Stage int
	// Trials and GPUsPerTrial restate the stage's shape under the plan.
	Trials       int
	GPUsPerTrial int
	// Instances is the cluster size (machines) during the stage.
	Instances int
	// Duration is the stage's expected wall-clock span in seconds,
	// including any provisioning that gates its start.
	Duration float64
	// Cost is the stage's expected compute cost attribution in dollars
	// (per-instance: machines held for the span; per-function: training
	// GPU-time consumed). Data ingress and minimum-charge corrections
	// are job-level and excluded.
	Cost float64
}

// Breakdown predicts per-stage durations and compute-cost attribution for
// a plan, using the same compiled segments, RNG streams and estimator
// mode as Estimate. Sample k condenses exactly the draws Estimate's k-th
// sample averaged over, so the decomposition is consistent with the
// aggregate estimate, and repeated or concurrent calls return identical
// results.
func (s *Simulator) Breakdown(p Plan) ([]StageEstimate, error) {
	cp, err := s.compile(p)
	if err != nil {
		return nil, err
	}
	vecs := s.sampleVectors(cp, p)
	n := len(cp.segs)
	durSum := make([]float64, n)
	costSum := make([]float64, n)
	pr := s.cloud.Pricing
	it := s.cloud.Instance

	for k := 0; k < s.samples; k++ {
		prev := 0
		for i, sg := range cp.segs {
			row := vecs[i][k]
			durSum[i] += row.dur
			if pr.Billing == cloud.PerFunction {
				costSum[i] += row.trainSec * float64(sg.trainGPUs) * it.PricePerGPUSecond(pr.Market)
			} else {
				// Mirror priceSchedule: machines carried over bill the
				// whole span; newly provisioned ones start billing when
				// the stage's SCALE request is serviced (queueing is
				// unbilled).
				cur := sg.instances
				kept := prev
				if cur < kept {
					kept = cur
				}
				billed := float64(kept) * row.dur
				if cur > kept {
					billed += float64(cur-kept) * (row.dur - row.scaleFin)
				}
				costSum[i] += billed / 3600 * it.PricePerHour(pr.Market)
			}
			prev = sg.instances
		}
	}

	out := make([]StageEstimate, n)
	for i, sg := range cp.segs {
		st := s.spec.Stage(i)
		out[i] = StageEstimate{
			Stage:        i,
			Trials:       st.Trials,
			GPUsPerTrial: GPUsPerTrial(p.Alloc[i], st.Trials),
			Instances:    sg.instances,
			Duration:     durSum[i] / float64(s.samples),
			Cost:         costSum[i] / float64(s.samples),
		}
	}
	return out, nil
}

// CriticalPathKinds samples one schedule and reports how much of the
// critical path each node kind contributes — a quick diagnostic for
// whether a plan is provisioning-bound or training-bound.
func (s *Simulator) CriticalPathKinds(p Plan, rng *stats.RNG) (map[string]float64, error) {
	b, err := s.build(p)
	if err != nil {
		return nil, err
	}
	if rng == nil {
		// Derive a deterministic stream for the plan rather than sharing
		// mutable state, keeping the Simulator safe for concurrent use.
		rng = s.planStream(p)
	}
	timings, _ := b.graph.Sample(rng)
	path := b.graph.CriticalPath(timings)
	out := make(map[string]float64)
	for _, id := range path {
		nd := b.graph.Node(id)
		out[nd.Kind.String()] += timings[id].Finish - timings[id].Start
	}
	return out, nil
}
