package sim

import (
	"fmt"
	"math"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/stats"
)

// TrainProfile supplies the profiled training-latency behaviour the
// simulator needs: the distribution of one training iteration's latency at
// a given per-trial GPU allocation, assuming the placement controller
// co-locates workers on a minimal node set.
type TrainProfile interface {
	// IterDist returns the one-iteration latency distribution at gpus
	// data parallel workers.
	IterDist(gpus int) stats.Dist
}

// ModelTrainProfile derives iteration latencies analytically from a zoo
// model — the ground truth used by the simulated experiments.
type ModelTrainProfile struct {
	// Model is the architecture being tuned.
	Model *model.Model
	// Batch is the fixed effective batch size (strong scaling).
	Batch int
	// GPUsPerNode is the accelerator count of the worker instance type,
	// used to compute the minimal node spread at each allocation.
	GPUsPerNode int
}

// IterDist returns the model's iteration latency at gpus co-located (to
// the extent possible) workers.
func (p ModelTrainProfile) IterDist(gpus int) stats.Dist {
	nodes := model.MinNodes(gpus, p.GPUsPerNode)
	return p.Model.IterLatencyDist(p.Batch, gpus, nodes)
}

// MeasuredTrainProfile is a profiler-produced training profile: a measured
// single-GPU iteration latency (mean and straggler σ) plus an interpolated
// speedup function over GPU counts.
type MeasuredTrainProfile struct {
	// BaseMean and BaseStd describe one iteration's latency at 1 GPU.
	BaseMean, BaseStd float64
	// Scaling is the measured speedup function.
	Scaling *model.InterpolatedScaling
}

// IterDist returns the measured latency distribution scaled to gpus.
func (p MeasuredTrainProfile) IterDist(gpus int) stats.Dist {
	speedup := p.Scaling.Speedup(gpus)
	mean := p.BaseMean / speedup
	if p.BaseStd == 0 {
		return stats.Deterministic{Value: mean}
	}
	return stats.Normal{Mu: mean, Sigma: p.BaseStd / speedup}
}

// ScaledTrainProfile wraps a TrainProfile, multiplying every iteration
// latency by Factor — the model of a uniform slowdown (Factor > 1) or
// speedup (Factor < 1) relative to the profiled behaviour. The harness's
// drifted-feasibility classifier and the replanner's synthetic-drift demos
// plan against it. Deterministic and Normal base distributions scale in
// closed form (multiplying a truncated normal's sample by a positive
// factor equals sampling the scaled parameters), so scaled profiles stay
// on the DAG compiler's inline opcodes; anything else falls back to
// stats.Scaled.
type ScaledTrainProfile struct {
	Base   TrainProfile
	Factor float64
}

// IterDist returns the base distribution at gpus with latency × Factor.
func (p ScaledTrainProfile) IterDist(gpus int) stats.Dist {
	switch v := p.Base.IterDist(gpus).(type) {
	case stats.Deterministic:
		return stats.Deterministic{Value: v.Value * p.Factor}
	case stats.Normal:
		return stats.Normal{Mu: v.Mu * p.Factor, Sigma: v.Sigma * p.Factor}
	default:
		return stats.Scaled{D: v, Factor: p.Factor}
	}
}

// CloudProfile bundles the provider parameters the simulator prices a plan
// against (§4.1).
type CloudProfile struct {
	// Instance is the homogeneous worker instance type.
	Instance cloud.InstanceType
	// Pricing selects billing model, market, minimum charge and data
	// price.
	Pricing cloud.Pricing
	// Overheads are the provisioning latency distributions.
	Overheads cloud.Overheads
	// DatasetGB is the dataset each instance ingresses once.
	DatasetGB float64
}

// Validate checks the cloud profile.
func (c CloudProfile) Validate() error {
	if c.Instance.GPUs < 1 {
		return fmt.Errorf("sim: worker instance %q has %d GPUs", c.Instance.Name, c.Instance.GPUs)
	}
	if c.DatasetGB < 0 {
		return fmt.Errorf("sim: negative dataset size")
	}
	return c.Pricing.Validate()
}

// DefaultCloudProfile returns p3.8xlarge workers with the paper's default
// pricing and overheads.
func DefaultCloudProfile() CloudProfile {
	it, err := cloud.DefaultCatalog().Lookup("p3.8xlarge")
	if err != nil {
		panic(err) // static data; unreachable
	}
	return CloudProfile{
		Instance:  it,
		Pricing:   cloud.DefaultPricing(),
		Overheads: cloud.DefaultOverheads(),
	}
}

// sumIters returns the distribution of the total latency of n i.i.d.
// iterations drawn from d. Normal and deterministic iteration latencies
// collapse analytically (sum of n normals is N(nμ, √n·σ)), which keeps
// simulation cost independent of iteration counts; other distributions
// fall back to stats.Repeat, drawing n samples per evaluation. Every
// returned type is one the DAG compiler (dag.Compile) encodes as an
// inline opcode, keeping interface dispatch off the Monte-Carlo hot path.
func sumIters(d stats.Dist, n int) stats.Dist {
	if n < 0 {
		panic("sim: negative iteration count")
	}
	switch v := d.(type) {
	case stats.Deterministic:
		return stats.Deterministic{Value: float64(n) * v.Value}
	case stats.Normal:
		// Truncation at zero matches stats.Normal.Sample, which is what
		// the per-iteration draw would have applied n times.
		return stats.Normal{Mu: float64(n) * v.Mu, Sigma: math.Sqrt(float64(n)) * v.Sigma}
	default:
		return stats.Repeat{D: d, N: n}
	}
}
