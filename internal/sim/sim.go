package sim

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/dag"
	"repro/internal/par"
	"repro/internal/placement"
	"repro/internal/spec"
	"repro/internal/stats"
)

// Estimate is the simulator's prediction for one plan.
type Estimate struct {
	// JCT is the expected job completion time in seconds, and JCTStd its
	// sample standard deviation across Monte-Carlo draws.
	JCT, JCTStd float64
	// Cost is the expected total dollar cost (compute plus data ingress)
	// and CostStd its standard deviation.
	Cost, CostStd float64
}

// Simulator predicts JCT and cost for allocation plans over one job.
// Construct with New; the zero value is not usable.
//
// A Simulator's configuration is immutable after construction and it is
// safe for concurrent use by multiple goroutines. Its only mutable state
// is a set of mutex-guarded bounded LRU caches memoizing pure
// computations — compiled stage-segment programs, compiled plans, and
// (under EstimatorSegment) segment sample vectors — so Estimate and
// Breakdown remain pure functions of the simulator's configuration and
// the plan: every Monte-Carlo draw derives a private RNG stream from the
// construction-time seed state, keyed by (stream family, sample index),
// and results do not depend on cache state, call order, goroutine, or
// worker count.
type Simulator struct {
	spec    *spec.ExperimentSpec
	profile TrainProfile
	cloud   CloudProfile
	samples int
	// workers bounds the Monte-Carlo fan-out; <= 0 selects GOMAXPROCS.
	workers int
	// estimator selects the Monte-Carlo stream discipline (see
	// EstimatorMode).
	estimator EstimatorMode
	// root is a snapshot of the seeding generator's state at construction.
	// It is never advanced: streams are derived from it with
	// stats.RNG.Stream, which is pure, so concurrent derivation is safe.
	root stats.RNG

	// mu guards the caches below. Misses are computed outside the lock
	// and inserted last-write-wins: every cached value is a pure function
	// of its key and the configuration, so double computation is benign.
	mu         sync.Mutex
	plans      *lru[string, *compiledPlan]
	segs       *lru[segKey, *segment]
	segSamples *lru[segKey, []segSample]
	segMoments *lru[segKey, segMoment]

	// anaPool recycles AnalyticEval scratch for Estimate's analytic mode;
	// evaluators are stateless between uses, so pooling only saves
	// allocations and cannot affect results.
	anaPool sync.Pool
}

// Option configures optional Simulator behavior in New.
type Option func(*Simulator)

// WithWorkers bounds the worker pool Estimate and Breakdown fan Monte-
// Carlo samples across. n <= 0 (the default) selects GOMAXPROCS; 1 forces
// fully serial sampling. The estimate is bit-identical at every worker
// count — the knob trades goroutine overhead against wall-clock time only.
func WithWorkers(n int) Option { return func(s *Simulator) { s.workers = n } }

// DefaultSamples is the Monte-Carlo sample count used when the caller does
// not override it. The paper keeps this small by default so that plans are
// generated quickly (§5).
const DefaultSamples = 20

// New returns a simulator for the given job. samples <= 0 selects
// DefaultSamples. The rng seeds every Monte-Carlo stream the simulator
// will ever draw; its state is snapshotted, so the caller may keep using
// (or discard) the generator afterwards without perturbing the simulator.
func New(s *spec.ExperimentSpec, profile TrainProfile, cp CloudProfile, samples int, rng *stats.RNG, opts ...Option) (*Simulator, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if profile == nil {
		return nil, fmt.Errorf("sim: nil train profile")
	}
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	if samples <= 0 {
		samples = DefaultSamples
	}
	if rng == nil {
		rng = stats.NewRNG(0)
	}
	sm := &Simulator{
		spec:       s,
		profile:    profile,
		cloud:      cp,
		samples:    samples,
		root:       *rng,
		plans:      newLRU[string, *compiledPlan](planCacheCap),
		segs:       newLRU[segKey, *segment](segCacheCap),
		segSamples: newLRU[segKey, []segSample](segCacheCap),
		segMoments: newLRU[segKey, segMoment](segCacheCap),
	}
	for _, o := range opts {
		o(sm)
	}
	return sm, nil
}

// Workers returns the resolved Monte-Carlo worker bound.
func (s *Simulator) Workers() int { return par.Workers(s.workers) }

// Samples returns the Monte-Carlo sample count; callers sizing safety
// margins around sampled means divide the spread by its square root.
func (s *Simulator) Samples() int { return s.samples }

// planKey hashes a plan's allocation vector into the index of its
// dedicated stream family.
func planKey(p Plan) uint64 {
	words := make([]uint64, len(p.Alloc))
	for i, a := range p.Alloc {
		words[i] = uint64(a)
	}
	return stats.Hash64(words...)
}

// planStream returns the root generator of the plan's stream family. The
// returned RNG is freshly allocated, so callers may advance it or derive
// per-sample sub-streams from it without synchronization.
func (s *Simulator) planStream(p Plan) *stats.RNG {
	root := s.root
	return root.Stream(planKey(p))
}

// Spec returns the simulated job's specification.
func (s *Simulator) Spec() *spec.ExperimentSpec { return s.spec }

// Cloud returns the simulator's cloud profile.
func (s *Simulator) Cloud() CloudProfile { return s.cloud }

// buildResult carries the DAG along with the stage metadata the cost model
// needs to replay a sampled schedule against the billing rules.
type buildResult struct {
	graph *dag.Graph
	// syncID[i] is the node ID of stage i's SYNC barrier.
	syncID []int
	// scaleID[i] is the node ID of the SCALE request issued before stage
	// i, or -1 if the stage needed no scale-up.
	scaleID []int
	// instances[i] is the cluster size (instance count) during stage i.
	instances []int
	// trainIDs[i] lists stage i's TRAIN node IDs.
	trainIDs [][]int
}

// BuildDAG synthesizes the execution DAG for a plan (§4.2, Figure 7):
// per stage, an optional blocking SCALE node plus parallel INIT_INSTANCE
// nodes if the cluster must grow, parallel TRAIN nodes (chained serially
// when the stage has fewer GPUs than trials), and a closing SYNC barrier
// that the next stage extends from. Deprovisioning is a zero-latency,
// zero-cost event and is not represented (it is accounted for by the cost
// model's per-stage instance counts).
func (s *Simulator) BuildDAG(p Plan) (*dag.Graph, error) {
	b, err := s.build(p)
	if err != nil {
		return nil, err
	}
	return b.graph, nil
}

func (s *Simulator) build(p Plan) (*buildResult, error) {
	if err := p.Validate(s.spec.NumStages()); err != nil {
		return nil, err
	}
	g := dag.New()
	b := &buildResult{graph: g}
	gpn := s.cloud.Instance.GPUs

	curInstances := 0
	frontier := []int(nil) // node IDs the next stage depends on
	trial0 := 0            // global index of the stage's first trial
	for i := 0; i < s.spec.NumStages(); i++ {
		st := s.spec.Stage(i)
		alloc := p.Alloc[i]
		// Size the cluster the way the placement controller will pack it
		// (co-located trials), so predicted instance counts — and
		// therefore per-instance cost — match execution.
		var need int
		if alloc >= st.Trials {
			need = placement.NodesNeeded(st.Trials, alloc/st.Trials, gpn)
		} else {
			need = placement.NodesNeeded(alloc, 1, gpn)
		}

		scaleID := -1
		stageDeps := frontier
		if need > curInstances {
			scale := g.AddNode(dag.Scale, i, -1, 0, s.cloud.Overheads.QueueDelay, frontier...)
			scaleID = scale.ID
			inits := make([]int, 0, need-curInstances)
			for k := curInstances; k < need; k++ {
				init := g.AddNode(dag.InitInstance, i, -1, 0, s.cloud.Overheads.InitLatency, scale.ID)
				inits = append(inits, init.ID)
			}
			// Training can begin only when both the previous stage is
			// complete and the new instances are ready.
			stageDeps = append(append([]int(nil), frontier...), inits...)
		}
		curInstances = need
		b.scaleID = append(b.scaleID, scaleID)
		b.instances = append(b.instances, need)

		var trains []int
		if alloc >= st.Trials {
			per := alloc / st.Trials
			trainDist := sumIters(s.profile.IterDist(per), st.Iters)
			for tr := 0; tr < st.Trials; tr++ {
				n := g.AddNode(dag.Train, i, trial0+tr, per, trainDist, stageDeps...)
				trains = append(trains, n.ID)
			}
		} else {
			// Fewer GPUs than trials: single-GPU slots with queued
			// trials chained serially behind them.
			trainDist := sumIters(s.profile.IterDist(1), st.Iters)
			slotTail := make([]int, alloc) // last node ID per slot
			for k := range slotTail {
				slotTail[k] = -1
			}
			for tr := 0; tr < st.Trials; tr++ {
				slot := tr % alloc
				deps := stageDeps
				if slotTail[slot] >= 0 {
					deps = []int{slotTail[slot]}
				}
				n := g.AddNode(dag.Train, i, trial0+tr, 1, trainDist, deps...)
				slotTail[slot] = n.ID
				trains = append(trains, n.ID)
			}
		}
		b.trainIDs = append(b.trainIDs, trains)

		sync := g.AddNode(dag.Sync, i, -1, 0, stats.Deterministic{Value: 0}, trains...)
		b.syncID = append(b.syncID, sync.ID)
		frontier = []int{sync.ID}
		trial0 += st.Trials
	}
	return b, nil
}

// Estimate predicts JCT and cost for the plan by drawing s.samples
// Monte-Carlo samples of each stage segment's compiled program and
// replaying every sample against the billing model. Segment draws fan
// out across the simulator's worker pool (WithWorkers) into
// index-addressed slots and the recombination reduces in fixed index
// order, so the estimate is bit-identical at any worker count and across
// repeated or concurrent calls, in both estimator modes.
//
//rbvet:pure
func (s *Simulator) Estimate(p Plan) (Estimate, error) {
	if s.estimator == EstimatorAnalytic {
		e := s.AcquireAnalyticEval()
		est, ok, err := e.Estimate(p)
		s.ReleaseAnalyticEval(e)
		if err != nil {
			return Estimate{}, err
		}
		if ok {
			return est, nil
		}
		// Some latency lacks finite moments: fall back to segment-mode
		// Monte-Carlo below (sampleVectors treats non-Full as segment).
	}
	cp, err := s.compile(p)
	if err != nil {
		return Estimate{}, err
	}
	vecs := s.sampleVectors(cp, p)
	jcts := make([]float64, s.samples)
	costs := make([]float64, s.samples)
	var births []float64
	for k := 0; k < s.samples; k++ {
		jcts[k], costs[k], births = s.priceSchedule(cp, vecs, k, births)
	}
	js, cs := stats.Summarize(jcts), stats.Summarize(costs)
	return Estimate{JCT: js.Mean, JCTStd: js.Std, Cost: cs.Mean, CostStd: cs.Std}, nil
}

// instanceCharge bills one instance held from birth to death.
func (s *Simulator) instanceCharge(birth, death float64) float64 {
	lifetime := death - birth
	if lifetime < 0 {
		lifetime = 0
	}
	if lifetime < s.cloud.Pricing.MinChargeSeconds {
		lifetime = s.cloud.Pricing.MinChargeSeconds
	}
	return lifetime / 3600 * s.cloud.Instance.PricePerHour(s.cloud.Pricing.Market)
}

// MeanIterLatency returns the profile's expected iteration latency at the
// given per-trial allocation — a convenience for planners sizing warm
// starts.
func (s *Simulator) MeanIterLatency(gpus int) float64 {
	return s.profile.IterDist(gpus).Mean()
}

// StaticClusterJCT is a quick analytic lower-bound estimate of a static
// plan's JCT using mean latencies only (no straggler inflation); used for
// bracketing enumeration ranges, not for plan selection.
func (s *Simulator) StaticClusterJCT(gpus int) float64 {
	var total float64
	for i := 0; i < s.spec.NumStages(); i++ {
		st := s.spec.Stage(i)
		if gpus >= st.Trials {
			per := gpus / st.Trials
			total += float64(st.Iters) * s.MeanIterLatency(per)
		} else {
			waves := math.Ceil(float64(st.Trials) / float64(gpus))
			total += waves * float64(st.Iters) * s.MeanIterLatency(1)
		}
	}
	return total
}
