package sim

import (
	"os"
	"sync"
	"testing"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/stats"
)

// stochasticSim returns a simulator whose latency distributions are
// genuinely random, so determinism tests exercise the RNG stream plumbing
// rather than degenerate constants.
func stochasticSim(t testing.TB, samples, workers int, seed uint64) *Simulator {
	t.Helper()
	s := spec.MustSHA(16, 2, 16, 2)
	prof := ModelTrainProfile{Model: model.ResNet50(), Batch: 512, GPUsPerNode: 4}
	cp := DefaultCloudProfile()
	cp.Overheads = cloud.Overheads{
		QueueDelay:  stats.Exponential{MeanValue: 5},
		InitLatency: stats.Normal{Mu: 15, Sigma: 3},
	}
	sm, err := New(s, prof, cp, samples, stats.NewRNG(seed), WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

// testPlans covers the three plan shapes the planner emits: static,
// shrinking elastic, and sub-trial allocations with queued waves.
func testPlans(sm *Simulator) []Plan {
	stages := sm.Spec().NumStages()
	elastic := make([]int, stages)
	for i := 0; i < stages; i++ {
		a := sm.Spec().Stage(i).Trials
		if a > 16 {
			a = 16
		}
		elastic[i] = a
	}
	return []Plan{
		Uniform(16, stages),
		{Alloc: elastic},
		Uniform(3, stages),
	}
}

// TestEstimateDeterministicAcrossWorkers is the PR's core invariant: for a
// fixed seed, Estimate is bit-identical at every worker count and across
// repeated calls.
func TestEstimateDeterministicAcrossWorkers(t *testing.T) {
	ref := stochasticSim(t, 40, 1, 42)
	for _, plan := range testPlans(ref) {
		want, err := ref.Estimate(plan)
		if err != nil {
			t.Fatal(err)
		}
		if want.JCTStd == 0 {
			t.Fatalf("plan %v: degenerate deterministic estimate, test is vacuous", plan)
		}
		for _, workers := range []int{1, 2, 8} {
			sm := stochasticSim(t, 40, workers, 42)
			for run := 0; run < 2; run++ {
				got, err := sm.Estimate(plan)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("plan %v workers=%d run=%d: %+v != serial %+v", plan, workers, run, got, want)
				}
			}
		}
	}
}

// TestEstimateIndependentOfCallOrder: estimates are pure functions of the
// plan — evaluating other plans first must not shift any stream. (The
// pre-parallel simulator violated this: a single shared RNG made every
// estimate depend on the full call history.)
func TestEstimateIndependentOfCallOrder(t *testing.T) {
	a := stochasticSim(t, 30, 2, 7)
	b := stochasticSim(t, 30, 2, 7)
	plans := testPlans(a)

	want := make([]Estimate, len(plans))
	for i, p := range plans {
		est, err := a.Estimate(p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = est
	}
	// Reverse order on the twin simulator.
	for i := len(plans) - 1; i >= 0; i-- {
		got, err := b.Estimate(plans[i])
		if err != nil {
			t.Fatal(err)
		}
		if got != want[i] {
			t.Fatalf("plan %v: reversed-order estimate %+v != %+v", plans[i], got, want[i])
		}
	}
}

// TestConcurrentEstimateRace hammers one shared Simulator from many
// goroutines (run under -race) and checks every result against the serial
// reference.
func TestConcurrentEstimateRace(t *testing.T) {
	sm := stochasticSim(t, 20, 4, 99)
	plans := testPlans(sm)
	want := make([]Estimate, len(plans))
	for i, p := range plans {
		est, err := sm.Estimate(p)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = est
	}

	const goroutines = 8
	const rounds = 10
	errc := make(chan error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % len(plans)
				got, err := sm.Estimate(plans[i])
				if err != nil {
					errc <- err
					return
				}
				if got != want[i] {
					t.Errorf("goroutine %d round %d plan %v: %+v != %+v", g, r, plans[i], got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}

// TestBreakdownDeterministicAndConsistent: Breakdown is repeatable and its
// stage durations reproduce Estimate's mean JCT, because both average the
// same per-plan sample streams.
func TestBreakdownDeterministicAndConsistent(t *testing.T) {
	sm := stochasticSim(t, 25, 4, 5)
	plan := testPlans(sm)[1]
	rows1, err := sm.Breakdown(plan)
	if err != nil {
		t.Fatal(err)
	}
	rows2, err := sm.Breakdown(plan)
	if err != nil {
		t.Fatal(err)
	}
	for i := range rows1 {
		if rows1[i] != rows2[i] {
			t.Fatalf("stage %d: %+v != %+v across calls", i, rows1[i], rows2[i])
		}
	}
	est, err := sm.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, r := range rows1 {
		total += r.Duration
	}
	// Stage spans partition each sampled makespan, so the sums of their
	// means must agree up to float summation order.
	tol := 1e-6 * est.JCT
	if diff := total - est.JCT; diff > tol || diff < -tol {
		t.Fatalf("breakdown durations sum to %v, Estimate JCT %v", total, est.JCT)
	}
}

// TestCriticalPathKindsDeterministic covers the nil-RNG path, which used
// to share the simulator's mutable generator.
func TestCriticalPathKindsDeterministic(t *testing.T) {
	sm := stochasticSim(t, 10, 2, 3)
	plan := testPlans(sm)[0]
	a, err := sm.CriticalPathKinds(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sm.CriticalPathKinds(plan, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("kind sets differ: %v vs %v", a, b)
	}
	for k, v := range a {
		if b[k] != v {
			t.Fatalf("kind %s: %v != %v across calls", k, v, b[k])
		}
	}
}

// TestEstimateHeavyRepeatability is the gated heavy check run by
// tools/repro/run.sh: large sample counts, high worker counts, many
// repetitions, all bit-identical.
//
//rbvet:impure(the env var only gates whether the heavy check runs at all; it never reaches a simulated value)
func TestEstimateHeavyRepeatability(t *testing.T) {
	if os.Getenv("RB_RUN_REPEATABILITY") == "" {
		t.Skip("set RB_RUN_REPEATABILITY=1 to run the heavy repeatability check")
	}
	ref := stochasticSim(t, 500, 1, 1234)
	plans := testPlans(ref)
	for _, plan := range plans {
		want, err := ref.Estimate(plan)
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 4, 8, 16} {
			sm := stochasticSim(t, 500, workers, 1234)
			for rep := 0; rep < 5; rep++ {
				got, err := sm.Estimate(plan)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("plan %v workers=%d rep=%d: %+v != %+v", plan, workers, rep, got, want)
				}
			}
		}
	}
}
