package sim

import "fmt"

// EstimatorMode selects how Estimate and Breakdown source Monte-Carlo
// draws for a plan's stage segments. Both modes evaluate the same compiled
// segment programs with the same arithmetic — they differ only in RNG
// stream discipline — so under fully deterministic latency profiles they
// return exactly equal estimates, and under stochastic profiles they agree
// to Monte-Carlo tolerance.
type EstimatorMode int

const (
	// EstimatorSegment (the default) derives each stage segment's RNG
	// streams from the tuple (stage, alloc, previous instance count) and
	// caches the segment's sampled duration/timing vector. A candidate
	// plan that changes one stage re-samples only that segment and
	// recombines the rest from cache, making greedy planning incremental.
	// Because candidate plans that share a tuple draw identical samples
	// (common random numbers), the noise in greedy pairwise comparisons
	// is correlated away rather than added in quadrature.
	EstimatorSegment EstimatorMode = iota
	// EstimatorFull draws every segment fresh from the plan's own stream
	// family, sample by sample in stage order — the reference estimator,
	// statistically identical to sampling the full execution DAG with no
	// cross-plan draw sharing and no cache dependence.
	EstimatorFull
	// EstimatorAnalytic draws no samples at all: it propagates
	// (mean, variance) moments through the compiled segment programs
	// (dag.Program.MomentsInto) and recombines them against an analytic
	// billing model, yielding an estimate in microseconds. It agrees with
	// the sampling modes exactly under deterministic latencies and to
	// statistical tolerance otherwise. Plans whose latencies lack finite
	// moments (Pareto alpha <= 2, opaque dists without Var) fall back to
	// EstimatorSegment Monte-Carlo transparently.
	EstimatorAnalytic
)

// String renders the mode as its flag spelling.
func (m EstimatorMode) String() string {
	switch m {
	case EstimatorSegment:
		return "segment"
	case EstimatorFull:
		return "full"
	case EstimatorAnalytic:
		return "analytic"
	}
	return fmt.Sprintf("EstimatorMode(%d)", int(m))
}

// ParseEstimator parses a -estimator flag value ("segment", "full", or
// "analytic").
func ParseEstimator(s string) (EstimatorMode, error) {
	switch s {
	case "segment":
		return EstimatorSegment, nil
	case "full":
		return EstimatorFull, nil
	case "analytic":
		return EstimatorAnalytic, nil
	}
	return 0, fmt.Errorf("sim: unknown estimator %q (want \"segment\", \"full\", or \"analytic\")", s)
}

// WithEstimator selects the Monte-Carlo estimator mode. The default is
// EstimatorSegment; see EstimatorMode for the trade-off.
func WithEstimator(m EstimatorMode) Option { return func(s *Simulator) { s.estimator = m } }

// Estimator returns the simulator's estimator mode.
func (s *Simulator) Estimator() EstimatorMode { return s.estimator }
