package sim

import "container/list"

// lru is a bounded least-recently-used cache. It is not safe for
// concurrent use on its own; the Simulator guards its caches with a
// mutex. Eviction only ever discards memoized pure computations, so a
// bounded capacity trades recomputation for memory without affecting
// results.
type lru[K comparable, V any] struct {
	cap   int
	order *list.List // front = most recently used; element values are *lruEntry[K, V]
	idx   map[K]*list.Element
}

type lruEntry[K comparable, V any] struct {
	key K
	val V
}

// newLRU returns an empty cache holding at most cap entries.
func newLRU[K comparable, V any](cap int) *lru[K, V] {
	if cap < 1 {
		cap = 1
	}
	return &lru[K, V]{cap: cap, order: list.New(), idx: make(map[K]*list.Element)}
}

// get returns the cached value for k, marking it most recently used.
func (c *lru[K, V]) get(k K) (V, bool) {
	if e, ok := c.idx[k]; ok {
		c.order.MoveToFront(e)
		return e.Value.(*lruEntry[K, V]).val, true
	}
	var zero V
	return zero, false
}

// put inserts or refreshes k, evicting the least recently used entry when
// the cache is full.
func (c *lru[K, V]) put(k K, v V) {
	if e, ok := c.idx[k]; ok {
		e.Value.(*lruEntry[K, V]).val = v
		c.order.MoveToFront(e)
		return
	}
	c.idx[k] = c.order.PushFront(&lruEntry[K, V]{key: k, val: v})
	if c.order.Len() > c.cap {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.idx, back.Value.(*lruEntry[K, V]).key)
	}
}

// len returns the current entry count.
func (c *lru[K, V]) len() int { return c.order.Len() }
