package sim

import (
	"math"
	"testing"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/spec"
	"repro/internal/stats"
)

// analyticEstimate evaluates p on a fresh evaluator, failing the test on
// error or on an unexpected fallback.
func analyticEstimate(t *testing.T, sm *Simulator, p Plan) Estimate {
	t.Helper()
	e := sm.NewAnalyticEval()
	est, ok, err := e.Estimate(p)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("plan %v: analytic estimator unexpectedly unsupported", p)
	}
	return est
}

// TestAnalyticAgreesExactlyUnderDeterministicLatencies: with point-mass
// latencies everywhere the moment pass is exact (every variance is zero),
// so the analytic estimate must match the Monte-Carlo modes to float
// round-off, under both billing models and for all plan shapes.
func TestAnalyticAgreesExactlyUnderDeterministicLatencies(t *testing.T) {
	for _, billing := range []cloud.BillingModel{cloud.PerInstance, cloud.PerFunction} {
		ana := deterministicSim(t, 5, 2, EstimatorAnalytic, billing)
		seg := deterministicSim(t, 5, 2, EstimatorSegment, billing)
		for _, plan := range testPlans(ana) {
			ae, err := ana.Estimate(plan)
			if err != nil {
				t.Fatal(err)
			}
			se, err := seg.Estimate(plan)
			if err != nil {
				t.Fatal(err)
			}
			if ae.JCTStd != 0 || ae.CostStd != 0 {
				t.Fatalf("billing %v plan %v: nonzero analytic spread %+v under deterministic latencies", billing, plan, ae)
			}
			if d := math.Abs(ae.JCT - se.JCT); d > 1e-9*se.JCT {
				t.Fatalf("billing %v plan %v: analytic JCT %v != segment %v", billing, plan, ae.JCT, se.JCT)
			}
			if d := math.Abs(ae.Cost - se.Cost); d > 1e-9*se.Cost {
				t.Fatalf("billing %v plan %v: analytic cost %v != segment %v", billing, plan, ae.Cost, se.Cost)
			}
			if ae.JCT <= 0 || ae.Cost <= 0 {
				t.Fatalf("billing %v plan %v: degenerate estimate %+v", billing, plan, ae)
			}
		}
	}
}

// TestAnalyticWithinMonteCarloTolerance: under stochastic latencies the
// analytic estimator is a (slightly biased) closed form of the same
// quantities EstimatorFull samples; at 400 samples its means must sit
// within a few standard errors plus the documented moment-matching bias
// allowance, for both billing models.
func TestAnalyticWithinMonteCarloTolerance(t *testing.T) {
	const samples = 400
	for _, billing := range []cloud.BillingModel{cloud.PerInstance, cloud.PerFunction} {
		ana := modeSim(t, samples, 4, 9, EstimatorAnalytic)
		full := modeSim(t, samples, 4, 9, EstimatorFull)
		ana.cloud.Pricing.Billing = billing
		full.cloud.Pricing.Billing = billing
		for _, plan := range testPlans(ana) {
			ae := analyticEstimate(t, ana, plan)
			fe, err := full.Estimate(plan)
			if err != nil {
				t.Fatal(err)
			}
			if ae.JCTStd <= 0 {
				t.Fatalf("billing %v plan %v: degenerate analytic spread %+v", billing, plan, ae)
			}
			// 5 standard errors of the Monte-Carlo mean plus 1.5% for the
			// max-approximation bias (the dag-level validation bounds the
			// per-stage mean error at 1%).
			jctTol := 5*fe.JCTStd/math.Sqrt(samples) + 0.015*fe.JCT
			costTol := 5*fe.CostStd/math.Sqrt(samples) + 0.015*fe.Cost
			if d := math.Abs(ae.JCT - fe.JCT); d > jctTol {
				t.Fatalf("billing %v plan %v: JCT analytic %v vs full %v (|d|=%v > %v)", billing, plan, ae.JCT, fe.JCT, d, jctTol)
			}
			if d := math.Abs(ae.Cost - fe.Cost); d > costTol {
				t.Fatalf("billing %v plan %v: cost analytic %v vs full %v (|d|=%v > %v)", billing, plan, ae.Cost, fe.Cost, d, costTol)
			}
			// The analytic spreads describe the same distributions; they
			// should be in the ballpark of the sampled spreads.
			if ae.JCTStd < 0.3*fe.JCTStd || ae.JCTStd > 3*fe.JCTStd {
				t.Fatalf("billing %v plan %v: JCTStd analytic %v vs full %v", billing, plan, ae.JCTStd, fe.JCTStd)
			}
		}
	}
}

// TestAnalyticFallsBackOnHeavyTails: a latency without a finite second
// moment (Pareto α ≤ 2) makes the analytic mode fall back to the segment
// Monte-Carlo path — Simulator.Estimate must return the segment-mode
// answer bit for bit, and the evaluator must report ok=false rather than
// inventing numbers.
func TestAnalyticFallsBackOnHeavyTails(t *testing.T) {
	mk := func(mode EstimatorMode) *Simulator {
		s := spec.MustSHA(16, 2, 16, 2)
		prof := ModelTrainProfile{Model: model.ResNet50(), Batch: 512, GPUsPerNode: 4}
		cp := DefaultCloudProfile()
		cp.Overheads = cloud.Overheads{
			QueueDelay:  stats.Pareto{Scale: 2, Alpha: 1.5}, // infinite variance
			InitLatency: stats.Normal{Mu: 15, Sigma: 3},
		}
		sm, err := New(s, prof, cp, 24, stats.NewRNG(7), WithWorkers(2), WithEstimator(mode))
		if err != nil {
			t.Fatal(err)
		}
		return sm
	}
	ana, seg := mk(EstimatorAnalytic), mk(EstimatorSegment)
	for _, plan := range testPlans(ana) {
		e := ana.NewAnalyticEval()
		if _, ok, err := e.Estimate(plan); err != nil || ok {
			t.Fatalf("plan %v: evaluator ok=%v err=%v, want unsupported", plan, ok, err)
		}
		ae, err := ana.Estimate(plan)
		if err != nil {
			t.Fatal(err)
		}
		se, err := seg.Estimate(plan)
		if err != nil {
			t.Fatal(err)
		}
		if ae != se {
			t.Fatalf("plan %v: analytic fallback %+v != segment %+v", plan, ae, se)
		}
	}
}

// TestAnalyticPureAcrossCacheState: analytic estimates are pure — they
// must not depend on what the plan, segment, or moment caches hold, and a
// cold simulator must agree with a warm one bit for bit.
func TestAnalyticPureAcrossCacheState(t *testing.T) {
	warm := modeSim(t, 30, 2, 13, EstimatorAnalytic)
	plan := testPlans(warm)[1]
	want, err := warm.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	stages := warm.Spec().NumStages()
	for g := 1; g <= 32; g++ {
		if _, err := warm.Estimate(Uniform(g, stages)); err != nil {
			t.Fatal(err)
		}
	}
	got, err := warm.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("estimate changed with cache state: %+v != %+v", got, want)
	}
	cold := modeSim(t, 30, 2, 13, EstimatorAnalytic)
	cgot, err := cold.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	if cgot != want {
		t.Fatalf("cold estimate %+v != warm %+v", cgot, want)
	}
}

// TestAnalyticIndependentOfSampleBudget: the analytic numbers come from
// moments, not draws — changing the Monte-Carlo sample budget must not
// move them at all.
func TestAnalyticIndependentOfSampleBudget(t *testing.T) {
	a := modeSim(t, 10, 1, 5, EstimatorAnalytic)
	b := modeSim(t, 400, 4, 99, EstimatorAnalytic)
	for _, plan := range testPlans(a) {
		ea, eb := analyticEstimate(t, a, plan), analyticEstimate(t, b, plan)
		if ea != eb {
			t.Fatalf("plan %v: estimate depends on sample budget: %+v != %+v", plan, ea, eb)
		}
	}
}

// TestCanonicalAllocSharesEverything: allocations that are behaviorally
// identical (same per-trial GPU share, same cluster size) must share
// segments, sample vectors, RNG streams, and moments — so their estimates
// are bit-identical in segment and analytic modes. This is the property
// the planner's frontier deduplication relies on.
func TestCanonicalAllocSharesEverything(t *testing.T) {
	for _, mode := range []EstimatorMode{EstimatorSegment, EstimatorAnalytic} {
		sm := modeSim(t, 30, 2, 17, mode)
		stages := sm.Spec().NumStages()
		stage := -1
		for i := 0; i < stages; i++ {
			if sm.Spec().Stage(i).Trials > 1 {
				stage = i
				break
			}
		}
		if stage < 0 {
			t.Fatal("no multi-trial stage in test spec")
		}
		trials := sm.Spec().Stage(stage).Trials
		a, b := Uniform(8, stages), Uniform(8, stages)
		a.Alloc[stage] = 2 * trials   // 2 GPUs per trial exactly
		b.Alloc[stage] = 2*trials + 1 // one idle GPU: same behavior, same cost
		ea, err := sm.Estimate(a)
		if err != nil {
			t.Fatal(err)
		}
		segsBefore := sm.segs.len()
		eb, err := sm.Estimate(b)
		if err != nil {
			t.Fatal(err)
		}
		if ea != eb {
			t.Fatalf("%v: equivalent allocations estimate differently: %+v != %+v", mode, ea, eb)
		}
		if got := sm.segs.len(); got != segsBefore {
			t.Fatalf("%v: segment cache grew from %d to %d on an equivalent allocation", mode, segsBefore, got)
		}
	}
}

// TestAnalyticMomentCacheReusesAcrossPlans: like the segment sample cache,
// the moment cache is keyed by segment tuple — re-estimating a plan that
// shares all but one stage builds exactly one new moment entry.
func TestAnalyticMomentCacheReusesAcrossPlans(t *testing.T) {
	sm := modeSim(t, 10, 1, 21, EstimatorAnalytic)
	stages := sm.Spec().NumStages()
	if _, err := sm.Estimate(Uniform(16, stages)); err != nil {
		t.Fatal(err)
	}
	before := sm.segMoments.len()
	alloc := Uniform(16, stages).Alloc
	alloc[stages-1] = 8
	if _, err := sm.Estimate(Plan{Alloc: alloc}); err != nil {
		t.Fatal(err)
	}
	if got := sm.segMoments.len(); got != before+1 {
		t.Fatalf("moment cache grew from %d to %d, want exactly one new entry", before, got)
	}
}

// TestAnalyticEvalWarmZeroAlloc pins the warm analytic path — the batched
// frontier evaluator's per-candidate cost — at zero heap allocations, for
// both billing models.
func TestAnalyticEvalWarmZeroAlloc(t *testing.T) {
	for _, billing := range []cloud.BillingModel{cloud.PerInstance, cloud.PerFunction} {
		sm := modeSim(t, 20, 1, 31, EstimatorAnalytic)
		sm.cloud.Pricing.Billing = billing
		plans := testPlans(sm)
		e := sm.NewAnalyticEval()
		ests := make([]Estimate, len(plans))
		oks := make([]bool, len(plans))
		if err := e.EstimateBatch(plans, ests, oks); err != nil { // warm caches
			t.Fatal(err)
		}
		for i, ok := range oks {
			if !ok {
				t.Fatalf("billing %v plan %v: unsupported", billing, plans[i])
			}
		}
		allocs := testing.AllocsPerRun(100, func() {
			if err := e.EstimateBatch(plans, ests, oks); err != nil {
				t.Fatal(err)
			}
		})
		if allocs != 0 {
			t.Fatalf("billing %v: warm EstimateBatch allocates %v per run, want 0", billing, allocs)
		}
	}
}
