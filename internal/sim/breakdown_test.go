package sim

import (
	"math"
	"testing"

	"repro/internal/cloud"
	"repro/internal/spec"
	"repro/internal/stats"
)

func TestBreakdownSumsToEstimate(t *testing.T) {
	// Per-stage durations must sum to the JCT prediction, and per-stage
	// costs to the compute portion of the cost prediction, for a
	// deterministic job (no Monte-Carlo disagreement between the calls).
	s := spec.Empty().AddStage(4, 10).AddStage(2, 20)
	cp := testCloud(cloud.PerInstance, 5, 15)
	sm := mustSim(t, s, constProfile{1}, cp, 3)
	plan := NewPlan(4, 4)

	rows, err := sm.Breakdown(plan)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	est, err := sm.Estimate(plan)
	if err != nil {
		t.Fatal(err)
	}
	var dur, cost float64
	for _, r := range rows {
		dur += r.Duration
		cost += r.Cost
	}
	if math.Abs(dur-est.JCT) > 1e-9 {
		t.Errorf("stage durations sum %v != JCT %v", dur, est.JCT)
	}
	if math.Abs(cost-est.Cost) > 1e-9 {
		t.Errorf("stage costs sum %v != cost %v (no data/min-charge here)", cost, est.Cost)
	}
	// Stage 0 carries the provisioning latency: 5+15+10 = 30 s.
	if math.Abs(rows[0].Duration-30) > 1e-9 {
		t.Errorf("stage 0 duration %v, want 30", rows[0].Duration)
	}
	if rows[0].Trials != 4 || rows[0].GPUsPerTrial != 1 || rows[0].Instances != 1 {
		t.Errorf("stage 0 shape = %+v", rows[0])
	}
}

func TestBreakdownPerFunction(t *testing.T) {
	s := spec.Empty().AddStage(4, 10)
	cp := testCloud(cloud.PerFunction, 0, 0)
	sm := mustSim(t, s, constProfile{1}, cp, 2)
	rows, err := sm.Breakdown(NewPlan(4))
	if err != nil {
		t.Fatal(err)
	}
	// 4 trials x 10 iters x 1 s x 1 GPU = 40 GPU-seconds.
	want := 40 * cp.Instance.PricePerGPUSecond(cloud.OnDemand)
	if math.Abs(rows[0].Cost-want) > 1e-9 {
		t.Errorf("per-function stage cost %v, want %v", rows[0].Cost, want)
	}
}

func TestBreakdownRejectsBadPlan(t *testing.T) {
	s := spec.Empty().AddStage(4, 10)
	sm := mustSim(t, s, constProfile{1}, testCloud(cloud.PerInstance, 0, 0), 2)
	if _, err := sm.Breakdown(NewPlan(4, 4)); err == nil {
		t.Fatal("bad plan accepted")
	}
}

func TestCriticalPathKinds(t *testing.T) {
	s := spec.Empty().AddStage(2, 10)
	sm := mustSim(t, s, constProfile{1}, testCloud(cloud.PerInstance, 5, 15), 2)
	kinds, err := sm.CriticalPathKinds(NewPlan(2), stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	// The critical path must include provisioning (20 s) and training
	// (10 s).
	if math.Abs(kinds["TRAIN"]-10) > 1e-9 {
		t.Errorf("TRAIN share %v, want 10", kinds["TRAIN"])
	}
	total := kinds["SCALE"] + kinds["INIT_INSTANCE"]
	if math.Abs(total-20) > 1e-9 {
		t.Errorf("provisioning share %v, want 20", total)
	}
}
