package sim

import (
	"repro/internal/cloud"
	"repro/internal/dag"
	"repro/internal/par"
	"repro/internal/placement"
	"repro/internal/stats"
)

// Cache capacities. Segments are shared across plans (a job with S stages
// and A feasible allocations has at most S·A·|instance counts| distinct
// segments, but the greedy planner's working set is far smaller), so the
// segment caches are sized larger than the plan cache.
const (
	planCacheCap = 512
	segCacheCap  = 4096
)

// segStreamDomain separates the segment-keyed RNG stream family from the
// plan-keyed family used by EstimatorFull and from any other Hash64 users.
const segStreamDomain = 0x7365676d656e7431 // "segment1"

// segKey identifies one stage segment of an execution DAG up to
// isomorphism within a single Simulator: the stage index fixes the trial
// count and iteration budget, alloc the per-trial GPU share and target
// cluster size, and prev — the instance count carried in from the previous
// stage — whether the segment opens with a SCALE request and how many
// INIT_INSTANCE nodes follow it. Two plans whose stage i agrees on
// (alloc, prev) execute bit-identical segments there.
type segKey struct {
	stage, alloc, prev int
}

// segment is one stage's sub-DAG compiled into a flat program, plus the
// node metadata the cost model needs to replay a sampled segment against
// the billing rules. All cross-stage edges of the full execution DAG pass
// through the single SYNC barrier closing each stage, so a segment
// evaluates zero-based (the barrier is the implicit time-zero source) and
// plan-level quantities recombine from per-segment samples. A segment is
// immutable after construction and safe for concurrent use.
type segment struct {
	key  segKey
	prog *dag.Program
	// instances is the cluster size (machines) during the stage.
	instances int
	// scaleIdx is the program-local index of the SCALE node, -1 when the
	// cluster does not grow into this stage.
	scaleIdx int
	// trainLo/trainHi bound the contiguous program-local TRAIN node range;
	// trainGPUs is the per-trial GPU count shared by every node in it.
	trainLo, trainHi int
	trainGPUs        int
}

// segSample is the sufficient statistic one Monte-Carlo draw of one
// segment contributes to plan estimation: the segment's zero-based
// wall-clock span, the finish time of its SCALE request (0 when the
// cluster does not grow), and the total busy GPU-slot seconds across its
// TRAIN nodes. JCT recombination chains dur across stages; billing replay
// derives instance births from scaleFin and training GPU-time from
// trainSec.
type segSample struct {
	dur, scaleFin, trainSec float64
}

// eval draws one execution of the segment, reusing buf as scratch, and
// condenses it to its segSample.
//
//rbvet:pure
func (sg *segment) eval(r *stats.RNG, buf []dag.Timing) (segSample, []dag.Timing) {
	timings, dur := sg.prog.SampleInto(r, buf)
	out := segSample{dur: dur}
	if sg.scaleIdx >= 0 {
		out.scaleFin = timings[sg.scaleIdx].Finish
	}
	for _, t := range timings[sg.trainLo:sg.trainHi] {
		out.trainSec += t.Finish - t.Start
	}
	return out, timings
}

// compiledPlan is a plan resolved to its per-stage segments plus the
// plan-level constants the cost model needs.
type compiledPlan struct {
	segs []*segment
	// maxInstances is the peak cluster size, which fixes the data-ingress
	// charge under LIFO deprovisioning.
	maxInstances int
}

// compile resolves a plan to its compiled form, consulting the plan LRU
// first and composing cache-shared segments on a miss. The result is a
// pure function of the simulator's configuration and the plan, so benign
// double computation under concurrent misses is harmless.
func (s *Simulator) compile(p Plan) (*compiledPlan, error) {
	if err := p.Validate(s.spec.NumStages()); err != nil {
		return nil, err
	}
	key := p.Key()
	s.mu.Lock()
	cp, ok := s.plans.get(key)
	s.mu.Unlock()
	if ok {
		return cp, nil
	}
	cp = &compiledPlan{segs: make([]*segment, len(p.Alloc))}
	prev := 0
	for i, alloc := range p.Alloc {
		sg := s.segmentFor(segKey{stage: i, alloc: canonAlloc(alloc, s.spec.Stage(i).Trials), prev: prev})
		cp.segs[i] = sg
		prev = sg.instances
		if sg.instances > cp.maxInstances {
			cp.maxInstances = sg.instances
		}
	}
	s.mu.Lock()
	s.plans.put(key, cp)
	s.mu.Unlock()
	return cp, nil
}

// canonAlloc maps a stage allocation to its behavioral representative:
// above the trial count only the fair per-trial share alloc/trials is
// ever used (by the DAG builder, the placement sizing, and the billing),
// so every allocation in [k·trials, (k+1)·trials) executes identically
// to k·trials. Keying segments by the representative makes equivalent
// allocations share compiled programs, sample vectors, and — because
// segStream hashes the key — the exact same common random numbers, which
// is what lets the planner deduplicate symmetric frontier candidates
// without changing any estimate.
func canonAlloc(alloc, trials int) int {
	if alloc >= trials {
		return alloc - alloc%trials
	}
	return alloc
}

// CanonicalPlanKey returns the Plan.Key encoding of p's behavioral
// representative under this simulator's spec: each stage allocation
// mapped through canonAlloc. Two plans with equal canonical keys produce
// bit-identical estimates in the segment and analytic modes, which derive
// programs, sample vectors and RNG streams from the canonical segment
// tuples; the full-DAG mode keys its streams by the raw plan and is
// excluded from the guarantee. The planner's frontier deduplication memos
// on this key. Stages beyond the spec pass through unmapped (such plans
// fail validation at estimation time anyway).
func (s *Simulator) CanonicalPlanKey(p Plan) string {
	stages := s.spec.NumStages()
	b := make([]byte, 0, 4*len(p.Alloc))
	for i, a := range p.Alloc {
		if i < stages {
			a = canonAlloc(a, s.spec.Stage(i).Trials)
		}
		b = append(b, byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
	}
	return string(b)
}

// segmentFor returns the compiled segment for key, building it on a cache
// miss.
func (s *Simulator) segmentFor(key segKey) *segment {
	s.mu.Lock()
	sg, ok := s.segs.get(key)
	s.mu.Unlock()
	if ok {
		return sg
	}
	sg = s.buildSegment(key)
	s.mu.Lock()
	s.segs.put(key, sg)
	s.mu.Unlock()
	return sg
}

// buildSegment constructs one stage's zero-based sub-DAG — mirroring the
// stage structure of build, with the previous stage's SYNC barrier as the
// implicit time-zero source — and compiles it to a flat program.
//
//rbvet:pure
func (s *Simulator) buildSegment(key segKey) *segment {
	st := s.spec.Stage(key.stage)
	gpn := s.cloud.Instance.GPUs
	var need int
	if key.alloc >= st.Trials {
		need = placement.NodesNeeded(st.Trials, key.alloc/st.Trials, gpn)
	} else {
		need = placement.NodesNeeded(key.alloc, 1, gpn)
	}

	// Presize the graph: scale + inits, one train per trial, one sync;
	// every train depends on each init (or one chained predecessor), the
	// sync on every train.
	grow := 0
	if need > key.prev {
		grow = need - key.prev
	}
	fan := grow
	if fan == 0 {
		fan = 1
	}
	g := dag.NewSized(grow+st.Trials+2, grow+st.Trials*fan+st.Trials)
	scaleIdx := -1
	var stageDeps []int
	if need > key.prev {
		scale := g.AddNode(dag.Scale, key.stage, -1, 0, s.cloud.Overheads.QueueDelay)
		scaleIdx = scale.ID
		for k := key.prev; k < need; k++ {
			init := g.AddNode(dag.InitInstance, key.stage, -1, 0, s.cloud.Overheads.InitLatency, scale.ID)
			stageDeps = append(stageDeps, init.ID)
		}
	}

	trainLo := g.Len()
	var trainGPUs int
	var trains []int
	if key.alloc >= st.Trials {
		per := key.alloc / st.Trials
		trainGPUs = per
		trainDist := sumIters(s.profile.IterDist(per), st.Iters)
		for tr := 0; tr < st.Trials; tr++ {
			n := g.AddNode(dag.Train, key.stage, tr, per, trainDist, stageDeps...)
			trains = append(trains, n.ID)
		}
	} else {
		trainGPUs = 1
		trainDist := sumIters(s.profile.IterDist(1), st.Iters)
		slotTail := make([]int, key.alloc)
		for k := range slotTail {
			slotTail[k] = -1
		}
		for tr := 0; tr < st.Trials; tr++ {
			slot := tr % key.alloc
			deps := stageDeps
			if slotTail[slot] >= 0 {
				deps = []int{slotTail[slot]}
			}
			n := g.AddNode(dag.Train, key.stage, tr, 1, trainDist, deps...)
			slotTail[slot] = n.ID
			trains = append(trains, n.ID)
		}
	}
	trainHi := g.Len()
	g.AddNode(dag.Sync, key.stage, -1, 0, stats.Deterministic{Value: 0}, trains...)

	return &segment{
		key:       key,
		prog:      dag.Compile(g),
		instances: need,
		scaleIdx:  scaleIdx,
		trainLo:   trainLo,
		trainHi:   trainHi,
		trainGPUs: trainGPUs,
	}
}

// segStream returns the root generator of a segment tuple's stream
// family. Deriving streams from the tuple rather than the plan is what
// makes segment samples reusable across plans: every plan that executes
// this tuple sees the same draws (common random numbers).
func (s *Simulator) segStream(key segKey) *stats.RNG {
	root := s.root
	return root.Stream(stats.Hash64(segStreamDomain, uint64(key.stage), uint64(key.alloc), uint64(key.prev)))
}

// segmentSamples returns the segment's s.samples-long sample vector,
// filling and caching it on a miss. Sample k always draws from the k-th
// stream of the tuple's family and slots are index-addressed, so the
// vector is bit-identical at any worker count; eviction merely forces a
// recomputation of the same values.
func (s *Simulator) segmentSamples(sg *segment) []segSample {
	s.mu.Lock()
	v, ok := s.segSamples.get(sg.key)
	s.mu.Unlock()
	if ok {
		return v
	}
	v = make([]segSample, s.samples)
	base := s.segStream(sg.key)
	scratch := make([][]dag.Timing, s.workerSlots())
	par.ForEachWorker(s.samples, s.Workers(), func(w, k int) {
		v[k], scratch[w] = sg.eval(base.Stream(uint64(k)), scratch[w])
	})
	s.mu.Lock()
	s.segSamples.put(sg.key, v)
	s.mu.Unlock()
	return v
}

// workerSlots returns the number of distinct worker slots a Monte-Carlo
// fan-out over s.samples can occupy (see par.ForEachWorker).
func (s *Simulator) workerSlots() int {
	n := s.Workers()
	if n > s.samples {
		n = s.samples
	}
	if n < 1 {
		n = 1
	}
	return n
}

// sampleVectors produces the per-stage sample vectors for a compiled
// plan under the simulator's estimator mode. vecs[i][k] is stage i's
// segSample for Monte-Carlo draw k.
//
// EstimatorSegment composes cached tuple-keyed vectors; EstimatorFull
// draws every stage fresh from the plan's own stream family, with sample
// k's single stream threaded through the stages in order (the draw order
// of sampling the full DAG). Both modes evaluate the same compiled
// programs, so they differ only in which RNG stream feeds each segment.
func (s *Simulator) sampleVectors(cp *compiledPlan, p Plan) [][]segSample {
	vecs := make([][]segSample, len(cp.segs))
	if s.estimator != EstimatorFull {
		for i, sg := range cp.segs {
			vecs[i] = s.segmentSamples(sg)
		}
		return vecs
	}
	for i := range vecs {
		vecs[i] = make([]segSample, s.samples)
	}
	base := s.planStream(p)
	scratch := make([][]dag.Timing, s.workerSlots())
	par.ForEachWorker(s.samples, s.Workers(), func(w, k int) {
		r := base.Stream(uint64(k))
		for i, sg := range cp.segs {
			vecs[i][k], scratch[w] = sg.eval(r, scratch[w])
		}
	})
	return vecs
}

// priceSchedule replays Monte-Carlo draw k of a compiled plan's segment
// rows against the billing model: stage durations chain into absolute
// time, per-instance billing replays LIFO instance lifetimes (births
// derived from each growth stage's SCALE finish, deaths at stage
// boundaries or job completion, subject to the minimum charge), and
// per-function billing sums training GPU-seconds. It returns the
// recombined JCT and total cost including data ingress. births is a
// reusable scratch buffer, returned (emptied) for the next call.
//
//rbvet:noalloc
func (s *Simulator) priceSchedule(cp *compiledPlan, vecs [][]segSample, k int, births []float64) (jct, cost float64, _ []float64) {
	pr := s.cloud.Pricing
	cost = float64(cp.maxInstances) * pr.DataIngressCost(s.cloud.DatasetGB)

	if pr.Billing == cloud.PerFunction {
		pg := s.cloud.Instance.PricePerGPUSecond(pr.Market)
		for i, sg := range cp.segs {
			row := vecs[i][k]
			jct += row.dur
			cost += row.trainSec * float64(sg.trainGPUs) * pg
		}
		return jct, cost, births
	}

	alive := births[:0] // birth time per alive instance, LIFO order
	stageStart := 0.0
	for i, sg := range cp.segs {
		row := vecs[i][k]
		want := sg.instances
		if want > len(alive) {
			birth := stageStart
			if sg.scaleIdx >= 0 {
				birth = stageStart + row.scaleFin // after queueing
			}
			for len(alive) < want {
				alive = append(alive, birth)
			}
		} else {
			for len(alive) > want {
				b := alive[len(alive)-1]
				alive = alive[:len(alive)-1]
				cost += s.instanceCharge(b, stageStart)
			}
		}
		stageStart += row.dur
	}
	for _, b := range alive {
		cost += s.instanceCharge(b, stageStart)
	}
	return stageStart, cost, alive[:0]
}
