// Package fleet drives fleet-scale populations of simulated trials
// through the vclock kernel — the 10^6-concurrent-trial workload of
// ROADMAP item 3. It is the kernel's scale harness: each trial is a few
// rows of struct-of-arrays state advanced entirely by opcode dispatch
// (no closures, no per-trial heap objects), with a watchdog timer per
// in-flight iteration that is cancelled on completion — the
// schedule/cancel churn pattern the executor's preemption machinery
// produces, at three orders of magnitude more concurrency than a real
// experiment.
//
// The package deliberately models only the kernel-facing shape of a
// tuning fleet (iteration events, watchdog cancels, staggered starts),
// not placement or billing: internal/executor remains the real control
// plane, differentially tested at its own scale, while fleet measures
// the substrate the fleet-scale roadmap items will stand on.
package fleet

import (
	"fmt"

	"repro/internal/vclock"
)

// Config sizes a fleet run.
type Config struct {
	// Trials is the number of concurrent trials; every one holds at
	// least one pending event for the whole run.
	Trials int
	// Iters is the number of iterations each trial executes.
	Iters int
	// MeanIterSeconds is the center of the per-iteration virtual
	// latency; per-trial noise spreads samples across (0.5, 1.5) of it.
	MeanIterSeconds float64
	// WatchdogSeconds is the watchdog deadline armed for every
	// iteration and cancelled when the iteration completes. It must
	// exceed 1.5*MeanIterSeconds or watchdogs fire spuriously.
	WatchdogSeconds float64
	// Seed derives every per-trial latency stream.
	Seed uint64
}

func (c *Config) validate() error {
	switch {
	case c.Trials < 1:
		return fmt.Errorf("fleet: %d trials", c.Trials)
	case c.Iters < 1:
		return fmt.Errorf("fleet: %d iters", c.Iters)
	case c.MeanIterSeconds <= 0:
		return fmt.Errorf("fleet: mean iteration latency %v", c.MeanIterSeconds)
	case c.WatchdogSeconds <= 1.5*c.MeanIterSeconds:
		return fmt.Errorf("fleet: watchdog %vs must exceed the max iteration latency %vs",
			c.WatchdogSeconds, 1.5*c.MeanIterSeconds)
	}
	return nil
}

// Fleet opcodes.
const (
	opIter uint8 = iota // one iteration completed
	opDog               // watchdog fired (a stall; should never happen here)
)

// Fleet is a running population. All per-trial state lives in dense
// parallel arrays indexed by trial row.
type Fleet struct {
	cfg   Config
	clock *vclock.Clock
	disp  vclock.DispatchID

	left []int32         // iterations remaining per trial
	rng  []uint64        // splitmix64 state per trial
	dog  []vclock.Handle // armed watchdog per trial

	done     int
	events   uint64 // opcode events fired
	cancels  uint64 // watchdog cancels issued
	stalls   uint64 // watchdogs that actually fired
	maxPend  int
	finished vclock.Time
}

// New builds a fleet on the given clock and schedules every trial's
// first iteration, staggered across one mean latency so start events do
// not all share a tick.
func New(clock *vclock.Clock, cfg Config) (*Fleet, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := &Fleet{
		cfg:   cfg,
		clock: clock,
		left:  make([]int32, cfg.Trials),
		rng:   make([]uint64, cfg.Trials),
		dog:   make([]vclock.Handle, cfg.Trials),
	}
	f.disp = clock.RegisterDispatcher(f.dispatch)
	for i := 0; i < cfg.Trials; i++ {
		f.left[i] = int32(cfg.Iters)
		f.rng[i] = cfg.Seed + uint64(i)*0x9e3779b97f4a7c15
		start := clock.Now() + vclock.Time(f.uniform(i)*cfg.MeanIterSeconds)
		clock.AtOp(start, f.disp, opIter, int64(i), 0)
		f.arm(i, start)
	}
	return f, nil
}

// splitmix64 advances trial i's latency stream.
func (f *Fleet) next(i int) uint64 {
	f.rng[i] += 0x9e3779b97f4a7c15
	z := f.rng[i]
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// uniform draws from [0, 1).
func (f *Fleet) uniform(i int) float64 {
	return float64(f.next(i)>>11) / (1 << 53)
}

// iterLatency draws the next iteration latency: (0.5, 1.5) x mean.
func (f *Fleet) iterLatency(i int) float64 {
	return (0.5 + f.uniform(i)) * f.cfg.MeanIterSeconds
}

// arm schedules trial i's watchdog for the iteration ending at `end`.
//
//rbvet:noalloc
func (f *Fleet) arm(i int, end vclock.Time) {
	f.dog[i] = f.clock.AtOp(end+vclock.Time(f.cfg.WatchdogSeconds), f.disp, opDog, int64(i), 0)
}

// dispatch is the fleet's opcode handler — the entire per-event hot
// path. It allocates nothing: cancel, schedule and the latency draw all
// run on preallocated state.
//
//rbvet:noalloc
func (f *Fleet) dispatch(op uint8, a, b int64) {
	f.events++
	i := int(a)
	switch op {
	case opIter:
		if f.clock.Cancel(f.dog[i]) {
			f.cancels++
		}
		f.left[i]--
		if f.left[i] <= 0 {
			f.done++
			if f.done == f.cfg.Trials {
				f.finished = f.clock.Now()
			}
			return
		}
		end := f.clock.Now() + vclock.Time(f.iterLatency(i))
		f.clock.AtOp(end, f.disp, opIter, int64(i), 0)
		f.arm(i, end)
	case opDog:
		// A stall: in this workload watchdogs always outlive their
		// iteration, so a firing means the kernel lost the iteration
		// event. Counted and surfaced by Stats for the bench to assert
		// on.
		f.stalls++
	}
}

// Done reports whether every trial has finished its iteration budget.
func (f *Fleet) Done() bool { return f.done == f.cfg.Trials }

// Step executes one kernel event, tracking peak queue occupancy.
func (f *Fleet) Step() bool {
	if p := f.clock.Pending(); p > f.maxPend {
		f.maxPend = p
	}
	return f.clock.Step()
}

// Stats is the outcome of a fleet run.
type Stats struct {
	// Trials is the concurrent population size; Events the opcode events
	// fired; Cancels the watchdog cancellations issued.
	Trials  int
	Events  uint64
	Cancels uint64
	// Stalls counts watchdogs that fired — always 0 unless the kernel
	// dropped or reordered an iteration event.
	Stalls uint64
	// PeakPending is the maximum number of events held concurrently.
	PeakPending int
	// VirtualSeconds is the virtual completion time of the whole fleet.
	VirtualSeconds float64
}

// Stats snapshots the run's counters.
func (f *Fleet) Stats() Stats {
	return Stats{
		Trials:         f.cfg.Trials,
		Events:         f.events,
		Cancels:        f.cancels,
		Stalls:         f.stalls,
		PeakPending:    f.maxPend,
		VirtualSeconds: float64(f.finished),
	}
}
