package fleet

import (
	"runtime"
	"runtime/debug"
	"testing"

	"repro/internal/vclock"
)

func drive(t *testing.T, mk func() *vclock.Clock, cfg Config) Stats {
	t.Helper()
	clock := mk()
	f, err := New(clock, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for !f.Done() {
		if !f.Step() {
			t.Fatal("queue drained before the fleet finished")
		}
	}
	return f.Stats()
}

var smallCfg = Config{
	Trials:          2000,
	Iters:           5,
	MeanIterSeconds: 30,
	WatchdogSeconds: 120,
	Seed:            7,
}

func TestFleetCompletes(t *testing.T) {
	s := drive(t, vclock.New, smallCfg)
	// Every trial fires Iters iteration events; watchdogs never fire.
	if want := uint64(smallCfg.Trials * smallCfg.Iters); s.Events != want {
		t.Fatalf("events = %d, want %d", s.Events, want)
	}
	if s.Stalls != 0 {
		t.Fatalf("%d watchdogs fired; the kernel lost iteration events", s.Stalls)
	}
	if s.Cancels != s.Events {
		t.Fatalf("cancels = %d, want one per iteration event %d", s.Cancels, s.Events)
	}
	// Every trial holds an iteration and a watchdog concurrently.
	if s.PeakPending < smallCfg.Trials {
		t.Fatalf("peak pending %d never reached the population %d", s.PeakPending, smallCfg.Trials)
	}
}

func TestFleetDeterministic(t *testing.T) {
	a := drive(t, vclock.New, smallCfg)
	b := drive(t, vclock.New, smallCfg)
	if a != b {
		t.Fatalf("two identical runs diverged:\n  %+v\n  %+v", a, b)
	}
}

func TestFleetKernelEquivalence(t *testing.T) {
	w := drive(t, vclock.New, smallCfg)
	h := drive(t, vclock.NewHeap, smallCfg)
	if w != h {
		t.Fatalf("kernels diverged on the fleet workload:\n  wheel %+v\n  heap  %+v", w, h)
	}
}

func TestFleetSteadyStateAllocs(t *testing.T) {
	// After warmup (slab and wheel grown to capacity), the fleet's event
	// loop must allocate nothing: this is the allocs/event = 0 claim of
	// BENCH_sim.json, enforced as a regression test.
	clock := vclock.New()
	f, err := New(clock, smallCfg)
	if err != nil {
		t.Fatal(err)
	}
	warm := uint64(smallCfg.Trials) // one full round of iteration events
	for f.events < warm && f.Step() {
	}
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := f.events
	for !f.Done() {
		if !f.Step() {
			t.Fatal("queue drained early")
		}
	}
	runtime.ReadMemStats(&after)
	if mallocs, events := after.Mallocs-before.Mallocs, f.events-start; mallocs > 0 {
		t.Fatalf("steady state allocated %d objects over %d events; want 0", mallocs, events)
	}
}
