package experiments

import (
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

// Table4Row is one model row.
type Table4Row struct {
	Model     string
	Deadline  time.Duration
	Fixed     Stat
	Rubber    Stat
	FixedPlan sim.Plan
	RBPlan    sim.Plan
}

// Table4Result reproduces Table 4: realized cost of fixed-cluster vs
// RubberBand execution for ResNet-101/CIFAR-10 (20 min),
// ResNet-152/CIFAR-100 (60 min) and BERT/RTE (20 min). Expected shape:
// RubberBand reduces cost on every model; the reduction is largest for
// the vision models (strong early parallelism and long survivor tails)
// and smaller for BERT (worse scaling limits how much front-loading
// helps).
type Table4Result struct {
	Rows []Table4Row
}

// table4Workloads returns the three model workloads.
func table4Workloads(fast bool) []struct {
	model    *model.Model
	space    *searchspace.Space
	spec     *spec.ExperimentSpec
	deadline time.Duration
} {
	shaVision := spec.MustSHA(32, 1, 50, 3)
	shaBERT := spec.MustSHA(32, 1, 30, 3)
	if fast {
		shaVision = spec.MustSHA(8, 1, 12, 3)
		shaBERT = spec.MustSHA(8, 1, 9, 3)
	}
	// The paper's wall-clock deadlines (20/60/20 minutes) correspond to
	// its testbed's epoch times. Our substrate's epochs are shorter for
	// ResNet-152/CIFAR-100 and BERT/RTE, so the paper's deadlines would
	// be slack — a regime where the cost-optimal plan is a tiny static
	// cluster for every policy. We scale those two deadlines to the same
	// *tightness* (deadline ÷ minimum serial tail time) as the paper's,
	// preserving the comparison the table makes. See EXPERIMENTS.md.
	return []struct {
		model    *model.Model
		space    *searchspace.Space
		spec     *spec.ExperimentSpec
		deadline time.Duration
	}{
		{model.ResNet101(), searchspace.DefaultVisionSpace(), shaVision, 20 * time.Minute},
		{model.ResNet152(), searchspace.DefaultVisionSpace(), shaVision, 25 * time.Minute},
		{model.BERT(), searchspace.DefaultNLPSpace(), shaBERT, 7 * time.Minute},
	}
}

// Table4 runs the model sweep end-to-end.
func Table4(cfg Config) (*Table4Result, error) {
	cfg = cfg.withDefaults()
	res := &Table4Result{}
	for wi, w := range table4Workloads(cfg.Fast) {
		row := Table4Row{Model: w.model.Name, Deadline: w.deadline}
		var fixed, rubber []float64
		for s := 0; s < cfg.Seeds; s++ {
			seed := cfg.Seed + uint64(wi)*7777 + uint64(s)*1000
			for _, policy := range []core.Policy{core.PolicyStatic, core.PolicyRubberBand} {
				cp := sim.DefaultCloudProfile()
				cp.DatasetGB = w.model.Dataset.SizeGB
				cp.Overheads = cloud.Overheads{
					QueueDelay:  stats.Deterministic{Value: 5},
					InitLatency: stats.Deterministic{Value: 15},
				}
				e := &core.Experiment{
					Model:          w.model,
					Space:          w.space,
					Spec:           w.spec,
					Cloud:          cp,
					Deadline:       w.deadline,
					Policy:         policy,
					Seed:           seed,
					Samples:        cfg.Samples,
					MaxGPUs:        128,
					RestoreSeconds: 2,
				}
				out, err := e.Run()
				if err != nil {
					return nil, fmt.Errorf("table4 %s %v: %w", w.model.Name, policy, err)
				}
				if policy == core.PolicyStatic {
					fixed = append(fixed, out.Actual.Cost)
					row.FixedPlan = out.Plan
				} else {
					rubber = append(rubber, out.Actual.Cost)
					row.RBPlan = out.Plan
				}
			}
		}
		row.Fixed.Mean, row.Fixed.Std = stats.MeanStd(fixed)
		row.Rubber.Mean, row.Rubber.Std = stats.MeanStd(rubber)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders Table 4.
func (r *Table4Result) render() *table {
	t := &table{
		title:  "Table 4: realized cost ($) across models, fixed cluster vs RubberBand",
		header: []string{"Model", "Time", "Fixed", "RubberBand"},
	}
	for _, row := range r.Rows {
		t.add(row.Model,
			mmss(row.Deadline.Seconds()),
			meanStd(row.Fixed.Mean, row.Fixed.Std),
			meanStd(row.Rubber.Mean, row.Rubber.Std))
	}
	return t
}

// String renders the result as an aligned text table.
func (r *Table4Result) String() string { return r.render().String() }

// CSV renders the result as comma-separated values.
func (r *Table4Result) CSV() string { return r.render().CSV() }
