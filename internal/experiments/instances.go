package experiments

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

// InstancesResult holds the instance-type selection extension: the
// elastic plan compiled on each GPU tier of the catalog, across a tight
// and a lax deadline. Expected shape: the trade-off flips with the
// deadline — coarse 8-GPU nodes win when multi-GPU gangs dominate (tight
// deadline, co-location matters), while fine-grained nodes are
// competitive when trials stay small (lax deadline, provisioning
// granularity matters).
type InstancesResult struct {
	Deadlines []float64
	// Rows[d] lists every catalog choice at Deadlines[d].
	Rows [][]InstanceRow
}

// InstanceRow is one (deadline, type) cell.
type InstanceRow struct {
	Instance string
	GPUs     int
	Feasible bool
	Cost     float64
	JCT      float64
	Plan     string
	Chosen   bool
}

// Instances runs the selection across deadlines.
func Instances(cfg Config) (*InstancesResult, error) {
	cfg = cfg.withDefaults()
	m := model.ResNet50()
	s := spec.MustSHA(64, 4, 508, 2)
	deadlines := []float64{600, 900, 1800}
	if cfg.Fast {
		s = spec.MustSHA(16, 4, 508, 2)
		deadlines = []float64{700, 1800}
	}
	profiles := func(it cloud.InstanceType) sim.TrainProfile {
		return sim.ModelTrainProfile{Model: m, Batch: 512, GPUsPerNode: it.GPUs}
	}
	base := sim.DefaultCloudProfile()
	base.Overheads = cloud.Overheads{
		QueueDelay:  stats.Deterministic{Value: 5},
		InitLatency: stats.Deterministic{Value: 15},
	}

	res := &InstancesResult{Deadlines: deadlines}
	for di, dl := range deadlines {
		sel, err := planner.SelectInstanceType(cloud.DefaultCatalog(), s, profiles, base,
			dl, cfg.Samples, cfg.Seed+uint64(di), 256)
		if err != nil && err != planner.ErrInfeasible {
			return nil, fmt.Errorf("instances deadline=%v: %w", dl, err)
		}
		var rows []InstanceRow
		if sel != nil {
			for _, c := range sel.Choices {
				row := InstanceRow{
					Instance: c.Instance.Name,
					GPUs:     c.Instance.GPUs,
					Feasible: c.Feasible,
					Chosen:   c.Feasible && c.Instance.Name == sel.Best.Instance.Name,
				}
				if c.Feasible {
					row.Cost = c.Result.Estimate.Cost
					row.JCT = c.Result.Estimate.JCT
					row.Plan = c.Result.Plan.String()
				}
				rows = append(rows, row)
			}
		}
		res.Rows = append(res.Rows, rows)
	}
	return res, nil
}

// render builds the table.
func (r *InstancesResult) render() *table {
	t := &table{
		title:  "Extension: worker instance-type selection (elastic plan per catalog tier)",
		header: []string{"deadline", "instance", "GPUs/node", "cost ($)", "JCT (s)", "plan", "chosen"},
	}
	for di, dl := range r.Deadlines {
		for _, row := range r.Rows[di] {
			cost, jct, plan := "infeasible", "-", "-"
			if row.Feasible {
				cost = fmt.Sprintf("%.2f", row.Cost)
				jct = fmt.Sprintf("%.0f", row.JCT)
				plan = row.Plan
			}
			chosen := ""
			if row.Chosen {
				chosen = "*"
			}
			t.add(fmt.Sprintf("%.0fs", dl), row.Instance, fmt.Sprint(row.GPUs),
				cost, jct, plan, chosen)
		}
	}
	return t
}

// String renders the result as an aligned text table.
func (r *InstancesResult) String() string { return r.render().String() }

// CSV renders the result as comma-separated values.
func (r *InstancesResult) CSV() string { return r.render().CSV() }
