package experiments

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/model"
	"repro/internal/planner"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

// workload bundles the knobs the simulated experiments of §6.1 sweep.
type workload struct {
	spec      *spec.ExperimentSpec
	model     *model.Model
	batch     int
	instance  string // catalog name
	billing   cloud.BillingModel
	dataPrice float64 // $/GB ingress
	datasetGB float64
	queue     float64 // provisioning queue delay (s)
	initLat   float64 // instance initialization latency (s)
	deadline  float64 // time constraint (s)
	maxGPUs   int
	samples   int
	seed      uint64
}

// simulator builds the plan simulator for the workload.
func (w workload) simulator() (*sim.Simulator, error) {
	it, err := cloud.DefaultCatalog().Lookup(w.instance)
	if err != nil {
		return nil, err
	}
	cp := sim.CloudProfile{
		Instance: it,
		Pricing: cloud.Pricing{
			Billing:          w.billing,
			Market:           cloud.OnDemand,
			MinChargeSeconds: 60,
			DataPricePerGB:   w.dataPrice,
		},
		Overheads: cloud.Overheads{
			QueueDelay:  stats.Deterministic{Value: w.queue},
			InitLatency: stats.Deterministic{Value: w.initLat},
		},
		DatasetGB: w.datasetGB,
	}
	prof := sim.ModelTrainProfile{Model: w.model, Batch: w.batch, GPUsPerNode: it.GPUs}
	return sim.New(w.spec, prof, cp, w.samples, stats.NewRNG(w.seed))
}

// planner builds a planner over a fresh simulator.
func (w workload) planner() (*planner.Planner, error) {
	sm, err := w.simulator()
	if err != nil {
		return nil, err
	}
	return &planner.Planner{Sim: sm, Deadline: w.deadline, MaxGPUs: w.maxGPUs}, nil
}

// policyCosts compiles the static and RubberBand-elastic plans for the
// workload and returns their predicted costs. Infeasible workloads return
// an error.
func (w workload) policyCosts() (static, elastic planner.Result, err error) {
	p, err := w.planner()
	if err != nil {
		return planner.Result{}, planner.Result{}, err
	}
	static, err = p.PlanStatic()
	if err != nil {
		return planner.Result{}, planner.Result{}, fmt.Errorf("static: %w", err)
	}
	elastic, err = p.PlanElastic()
	if err != nil {
		return planner.Result{}, planner.Result{}, fmt.Errorf("elastic: %w", err)
	}
	return static, elastic, nil
}

// fig9Workload is the §6.1.1/§6.1.2/§6.1.3 base job: SHA(n=64, r=4,
// R=508), ResNet-50 at batch 512 over p3.8xlarge workers.
func fig9Workload(cfg Config, seedOff uint64) workload {
	m := model.ResNet50()
	s := spec.MustSHA(64, 4, 508, 2)
	deadline := 900.0 // tight enough that elasticity matters (§6.1)
	if cfg.Fast {
		// A quarter-size job with the same long survivor tail, so fast
		// runs still exercise the regime where elastic allocation wins.
		s = spec.MustSHA(16, 4, 508, 2)
		deadline = 700
	}
	return workload{
		spec:     s,
		model:    m,
		batch:    512,
		instance: "p3.8xlarge",
		billing:  cloud.PerInstance,
		deadline: deadline,
		maxGPUs:  256,
		samples:  cfg.Samples,
		seed:     cfg.Seed + seedOff,
	}
}
