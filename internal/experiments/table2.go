package experiments

import (
	"fmt"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

// Table2Row is one policy/deadline row of Table 2.
type Table2Row struct {
	Policy      core.Policy
	DeadlineMin int
	JCTSim      Stat
	CostSim     Stat
	JCTReal     Stat
	CostReal    Stat
	Acc         Stat
	// RealSkipped marks rows whose end-to-end execution was skipped
	// because the plan's peak cluster exceeds the resource cap (the
	// paper's "*" rows for the naive elastic policy).
	RealSkipped bool
}

// Table2Result reproduces Table 2: ResNet-101 on CIFAR-10,
// SHA(n=32, r=1, R=50, η=3), 15-second provisioning, deadlines of 20, 30
// and 40 minutes, three seeds per cell. Expected shape: RubberBand's cost
// is never above the static baseline's; the gap is largest at the
// tightest deadline and nearly vanishes at the laxest; the naive elastic
// policy can lose to static; realized JCT/cost track simulation closely;
// accuracy differences across policies are small.
type Table2Result struct {
	Rows []Table2Row
}

// table2Experiment builds the §6.3.1 experiment for one policy/deadline/
// seed.
func table2Experiment(policy core.Policy, deadline time.Duration, seed uint64, samples int, fast bool) *core.Experiment {
	m := model.ResNet101()
	s := spec.MustSHA(32, 1, 50, 3)
	if fast {
		s = spec.MustSHA(8, 1, 12, 3)
	}
	cp := sim.DefaultCloudProfile()
	cp.DatasetGB = m.Dataset.SizeGB
	// §6.3.1: instance initialization and node scale-up latency of 15 s
	// (warm instance pool).
	cp.Overheads = cloud.Overheads{
		QueueDelay:  stats.Deterministic{Value: 5},
		InitLatency: stats.Deterministic{Value: 15},
	}
	return &core.Experiment{
		Model:          m,
		Space:          searchspace.DefaultVisionSpace(),
		Spec:           s,
		Cloud:          cp,
		Deadline:       deadline,
		Policy:         policy,
		Seed:           seed,
		Samples:        samples,
		MaxGPUs:        128,
		RestoreSeconds: 2,
	}
}

// Table2 runs the full grid.
func Table2(cfg Config) (*Table2Result, error) {
	cfg = cfg.withDefaults()
	deadlines := []int{20, 30, 40}
	if cfg.Fast {
		deadlines = []int{20}
	}
	policies := []core.Policy{core.PolicyStatic, core.PolicyNaiveElastic, core.PolicyRubberBand}
	res := &Table2Result{}
	for _, dl := range deadlines {
		for _, policy := range policies {
			row, err := table2Row(cfg, policy, dl)
			if err != nil {
				return nil, fmt.Errorf("table2 %v @%dm: %w", policy, dl, err)
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func table2Row(cfg Config, policy core.Policy, deadlineMin int) (Table2Row, error) {
	var jctSim, costSim, jctReal, costReal, accs []float64
	skipped := false
	for s := 0; s < cfg.Seeds; s++ {
		e := table2Experiment(policy, time.Duration(deadlineMin)*time.Minute,
			cfg.Seed+uint64(s)*1000, cfg.Samples, cfg.Fast)
		pres, _, err := e.Plan()
		if err != nil {
			return Table2Row{}, err
		}
		jctSim = append(jctSim, pres.Estimate.JCT)
		costSim = append(costSim, pres.Estimate.Cost)

		// The paper skips naive-elastic execution when the plan demands
		// a prohibitively large cluster (512 GPUs at 20 minutes). Apply
		// the same resource cap to real runs.
		if pres.Plan.Max() > 256 {
			skipped = true
			continue
		}
		actual, err := e.Execute(pres.Plan)
		if err != nil {
			return Table2Row{}, err
		}
		jctReal = append(jctReal, actual.JCT)
		costReal = append(costReal, actual.Cost)
		accs = append(accs, actual.BestAccuracy*100)
	}
	row := Table2Row{
		Policy:      policy,
		DeadlineMin: deadlineMin,
		RealSkipped: skipped,
	}
	row.JCTSim.Mean, row.JCTSim.Std = stats.MeanStd(jctSim)
	row.CostSim.Mean, row.CostSim.Std = stats.MeanStd(costSim)
	if !skipped {
		row.JCTReal.Mean, row.JCTReal.Std = stats.MeanStd(jctReal)
		row.CostReal.Mean, row.CostReal.Std = stats.MeanStd(costReal)
		row.Acc.Mean, row.Acc.Std = stats.MeanStd(accs)
	}
	return row, nil
}

// String renders Table 2.
func (r *Table2Result) render() *table {
	t := &table{
		title: "Table 2: cost to complete ResNet-101/CIFAR-10 SHA(32,1,50,η=3) across time constraints",
		header: []string{"policy", "max time", "JCT (sim)", "Cost (sim)",
			"JCT (real)", "Cost (real)", "Acc (%)"},
	}
	for _, row := range r.Rows {
		jr, cr, acc := "*", "*", "*"
		if !row.RealSkipped {
			jr = fmt.Sprintf("%s ± %02.0fs", mmss(row.JCTReal.Mean), row.JCTReal.Std)
			cr = fmt.Sprintf("$%.2f ± %.2f", row.CostReal.Mean, row.CostReal.Std)
			acc = meanStd(row.Acc.Mean, row.Acc.Std)
		}
		t.add(row.Policy.String(),
			fmt.Sprintf("%d min", row.DeadlineMin),
			fmt.Sprintf("%s ± %02.0fs", mmss(row.JCTSim.Mean), row.JCTSim.Std),
			fmt.Sprintf("$%.2f ± %.2f", row.CostSim.Mean, row.CostSim.Std),
			jr, cr, acc)
	}
	return t
}

// Table3Result reproduces Table 3: the realized elastic cluster schedule
// for the 20-minute RubberBand plan. Expected shape: trial counts shrink
// 32 → 10 → 3 → 1 while GPUs per trial grow and the cluster size (in
// nodes) shrinks.
type Table3Result struct {
	Plan sim.Plan
	Rows []Table3Row
}

// Table3Row is one stage of the realized schedule.
type Table3Row struct {
	EpochStart, EpochEnd int
	Trials               int
	GPUsPerTrial         int
	ClusterNodes         int
}

// Table3 compiles and executes the 20-minute RubberBand plan and reports
// the realized schedule.
func Table3(cfg Config) (*Table3Result, error) {
	cfg = cfg.withDefaults()
	e := table2Experiment(core.PolicyRubberBand, 20*time.Minute, cfg.Seed, cfg.Samples, cfg.Fast)
	res, err := e.Run()
	if err != nil {
		return nil, err
	}
	out := &Table3Result{Plan: res.Plan}
	for _, row := range res.Actual.Schedule {
		out.Rows = append(out.Rows, Table3Row{
			EpochStart:   row.IterStart,
			EpochEnd:     row.IterEnd,
			Trials:       row.Trials,
			GPUsPerTrial: row.GPUsPerTrial,
			ClusterNodes: row.ClusterNodes,
		})
	}
	return out, nil
}

// String renders Table 3.
func (r *Table3Result) render() *table {
	t := &table{
		title:  fmt.Sprintf("Table 3: example elastic cluster schedule (plan %v)", r.Plan),
		header: []string{"Epoch range", "trials", "GPUs/trial", "Cluster size (nodes)"},
	}
	for _, row := range r.Rows {
		t.add(fmt.Sprintf("%d-%d", row.EpochStart, row.EpochEnd),
			fmt.Sprint(row.Trials),
			fmt.Sprint(row.GPUsPerTrial),
			fmt.Sprint(row.ClusterNodes))
	}
	return t
}

// String renders the result as an aligned text table.
func (r *Table2Result) String() string { return r.render().String() }

// CSV renders the result as comma-separated values.
func (r *Table2Result) CSV() string { return r.render().CSV() }

// String renders the result as an aligned text table.
func (r *Table3Result) String() string { return r.render().String() }

// CSV renders the result as comma-separated values.
func (r *Table3Result) CSV() string { return r.render().CSV() }
