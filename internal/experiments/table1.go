package experiments

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/executor"
	"repro/internal/model"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// Table1Result holds the placement-controller ablation (§6.2): achieved
// sample throughput (samples/s) per trial at 1, 2 and 4 GPUs on a cluster
// of 8-GPU p3.16xlarge nodes, with and without the placement controller.
// Expected shape (paper: 749→1480→2773 vs 674→948→1210): with placement,
// throughput scales nearly linearly (~3.7x at 4 GPUs); without it,
// workers scatter across nodes and scaling collapses to ~1.8x.
type Table1Result struct {
	GPUs []int
	// Placed and Scattered are throughput mean/std per GPU count.
	Placed    []Stat
	Scattered []Stat
}

// Stat is a mean ± std pair.
type Stat struct{ Mean, Std float64 }

// Table1 measures end-to-end throughput through the executor with the
// placement controller enabled and disabled.
func Table1(cfg Config) (*Table1Result, error) {
	cfg = cfg.withDefaults()
	gpuCounts := []int{1, 2, 4}
	res := &Table1Result{GPUs: gpuCounts}
	for _, g := range gpuCounts {
		placed, err := table1Throughput(cfg, g, false)
		if err != nil {
			return nil, err
		}
		scattered, err := table1Throughput(cfg, g, true)
		if err != nil {
			return nil, err
		}
		res.Placed = append(res.Placed, placed)
		res.Scattered = append(res.Scattered, scattered)
	}
	return res, nil
}

// table1Throughput runs a one-stage workload of several trials at
// gpusPerTrial each on a fixed pool of p3.16xlarge nodes and returns the
// per-trial sample throughput across seeds.
func table1Throughput(cfg Config, gpusPerTrial int, scatter bool) (Stat, error) {
	// Eight trials provision a wide enough cluster (4 p3.16xlarge nodes
	// at 4 GPUs/trial) that scattering genuinely fragments gangs, as in
	// the paper's end-to-end setting.
	const (
		trials = 8
		iters  = 8
		batch  = 1024
	)
	var throughputs []float64
	for seed := uint64(0); seed < uint64(cfg.Seeds); seed++ {
		m := model.ResNet50()
		// §6.2 uses batch 1024; with gradient accumulation the batch is
		// held constant at every allocation.
		clock := vclock.New()
		rng := stats.NewRNG(cfg.Seed + 100 + seed)
		pricing := cloud.DefaultPricing()
		ov := cloud.Overheads{
			QueueDelay:  stats.Deterministic{Value: 0},
			InitLatency: stats.Deterministic{Value: 0},
		}
		provider, err := cloud.NewProvider(clock, rng.Split(), pricing, ov, 0)
		if err != nil {
			return Stat{}, err
		}
		it, err := cloud.DefaultCatalog().Lookup("p3.16xlarge")
		if err != nil {
			return Stat{}, err
		}
		mgr, err := cluster.NewManager(provider, it, clock)
		if err != nil {
			return Stat{}, err
		}
		s := spec.Empty().AddStage(trials, iters)
		res, err := executor.Run(executor.Config{
			Spec:             s,
			Plan:             sim.NewPlan(trials * gpusPerTrial),
			Model:            m,
			Batch:            batch,
			Configs:          searchspace.DefaultVisionSpace().SampleN(rng, trials),
			Provider:         provider,
			Cluster:          mgr,
			Clock:            clock,
			RNG:              rng,
			DisablePlacement: scatter,
		})
		if err != nil {
			return Stat{}, err
		}
		// Per-trial throughput: each trial processed iters batches over
		// the stage span; stragglers make individual trials vary, so use
		// the stage span per trial via its metric timestamps.
		for _, tr := range res.Trials {
			ms := tr.Metrics()
			if len(ms) == 0 {
				continue
			}
			span := float64(ms[len(ms)-1].At)
			first := float64(ms[0].At)
			if len(ms) > 1 {
				// Exclude the first iteration's start offset by
				// averaging over completed iterations.
				perIter := (span - first) / float64(len(ms)-1)
				if perIter > 0 {
					throughputs = append(throughputs, float64(batch)/perIter)
				}
			}
		}
	}
	mean, std := stats.MeanStd(throughputs)
	return Stat{Mean: mean, Std: std}, nil
}

// String renders the ablation table.
func (r *Table1Result) render() *table {
	t := &table{
		title:  "Table 1: placement controller sample throughput (samples/s), ResNet-50 bs=1024 on p3.16xlarge",
		header: []string{"#GPUs", "Placement", "No Placement"},
	}
	for i, g := range r.GPUs {
		t.add(fmt.Sprint(g),
			meanStd(r.Placed[i].Mean, r.Placed[i].Std),
			meanStd(r.Scattered[i].Mean, r.Scattered[i].Std))
	}
	return t
}

// String renders the result as an aligned text table.
func (r *Table1Result) String() string { return r.render().String() }

// CSV renders the result as comma-separated values.
func (r *Table1Result) CSV() string { return r.render().CSV() }
