package experiments

import (
	"fmt"
	"time"

	"repro/internal/asha"
	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
	"repro/internal/vclock"
)

// ASHAResult compares RubberBand against the asynchronous prior-work
// baseline (§7): ASHA on a fixed cluster keeps sampling new
// configurations whenever workers free up, which the paper (citing
// HyperSched) argues is an ineffective use of resources under a time
// constraint. Expected shape: at an equal deadline, ASHA spends at least
// as much (its cluster never shrinks) while its best *fully trained*
// configuration is no better; most of its sampled configurations die
// partially trained.
type ASHAResult struct {
	Rows []ASHARow
}

// ASHARow is one scheduler's outcome.
type ASHARow struct {
	Scheduler    string
	Cost         Stat
	BestAccuracy Stat
	// SampledConfigs is the mean number of configurations evaluated (at
	// any depth); FinishedConfigs is the mean number trained to the full
	// budget R.
	SampledConfigs  float64
	FinishedConfigs float64
}

// ASHA runs the comparison.
func ASHA(cfg Config) (*ASHAResult, error) {
	cfg = cfg.withDefaults()
	const (
		r, maxR, eta = 1, 50, 3
		nTrials      = 32
		workers      = 8
	)
	deadline := 20 * time.Minute
	shaSpec := spec.MustSHA(nTrials, r, maxR, eta)
	if cfg.Fast {
		shaSpec = spec.MustSHA(8, 1, 12, 3)
	}

	var rbCost, rbAcc, ashaCost, ashaAcc, sampled, finished []float64
	for s := 0; s < cfg.Seeds; s++ {
		seed := cfg.Seed + 500 + uint64(s)*1000

		// RubberBand.
		cp := sim.DefaultCloudProfile()
		cp.DatasetGB = model.CIFAR10.SizeGB
		cp.Overheads = cloud.Overheads{
			QueueDelay:  stats.Deterministic{Value: 5},
			InitLatency: stats.Deterministic{Value: 15},
		}
		exp := &core.Experiment{
			Model:          model.ResNet101(),
			Space:          searchspace.DefaultVisionSpace(),
			Spec:           shaSpec,
			Cloud:          cp,
			Deadline:       deadline,
			Policy:         core.PolicyRubberBand,
			Seed:           seed,
			Samples:        cfg.Samples,
			MaxGPUs:        128,
			RestoreSeconds: 2,
		}
		rbRes, err := exp.Run()
		if err != nil {
			return nil, fmt.Errorf("asha experiment (rubberband): %w", err)
		}
		rbCost = append(rbCost, rbRes.Actual.Cost)
		rbAcc = append(rbAcc, rbRes.Actual.BestAccuracy)

		// ASHA on the same ladder and substrate.
		clock := vclock.New()
		rng := stats.NewRNG(seed + 2)
		pricing := cp.Pricing
		provider, err := cloud.NewProvider(clock, rng.Split(), pricing, cp.Overheads, cp.DatasetGB)
		if err != nil {
			return nil, err
		}
		mgr, err := cluster.NewManager(provider, cp.Instance, clock)
		if err != nil {
			return nil, err
		}
		maxIters := shaSpec.MaxIters()
		ashaRes, err := asha.Run(asha.Config{
			Model:    model.ResNet101(),
			Batch:    model.ResNet101().BaseBatch,
			Space:    searchspace.DefaultVisionSpace(),
			MinIters: r, MaxIters: maxIters, Eta: eta,
			Workers:  workers,
			Deadline: deadline.Seconds(),
			Provider: provider,
			Cluster:  mgr,
			Clock:    clock,
			RNG:      rng,
		})
		if err != nil {
			return nil, fmt.Errorf("asha experiment (asha): %w", err)
		}
		ashaCost = append(ashaCost, ashaRes.Cost)
		ashaAcc = append(ashaAcc, ashaRes.BestAccuracy)
		sampled = append(sampled, float64(ashaRes.Sampled))
		finished = append(finished, float64(ashaRes.Finished))
	}

	res := &ASHAResult{}
	rb := ASHARow{Scheduler: "RubberBand", SampledConfigs: float64(shaSpec.TotalTrials()), FinishedConfigs: 1}
	rb.Cost.Mean, rb.Cost.Std = stats.MeanStd(rbCost)
	rb.BestAccuracy.Mean, rb.BestAccuracy.Std = stats.MeanStd(rbAcc)
	as := ASHARow{Scheduler: "ASHA (fixed cluster)"}
	as.Cost.Mean, as.Cost.Std = stats.MeanStd(ashaCost)
	as.BestAccuracy.Mean, as.BestAccuracy.Std = stats.MeanStd(ashaAcc)
	as.SampledConfigs, _ = stats.MeanStd(sampled)
	as.FinishedConfigs, _ = stats.MeanStd(finished)
	res.Rows = []ASHARow{rb, as}
	return res, nil
}

// String renders the comparison.
func (r *ASHAResult) render() *table {
	t := &table{
		title:  "ASHA (prior work, fixed cluster) vs RubberBand at an equal deadline",
		header: []string{"scheduler", "cost ($)", "best acc", "configs sampled", "fully trained"},
	}
	for _, row := range r.Rows {
		t.add(row.Scheduler,
			meanStd(row.Cost.Mean, row.Cost.Std),
			meanStd(row.BestAccuracy.Mean*100, row.BestAccuracy.Std*100),
			fmt.Sprintf("%.0f", row.SampledConfigs),
			fmt.Sprintf("%.0f", row.FinishedConfigs))
	}
	return t
}

// SpotResult sweeps spot-market preemption intensity (the paper's
// deferred future work): RubberBand on ~3x cheaper preemptible capacity,
// recovering from reclamations via checkpoints. Expected shape: spot
// dominates on cost while preemptions are rare; as reclamation
// intensifies, replayed work and restore latency erode the discount and
// stretch JCT.
type SpotResult struct {
	Rows []SpotRow
}

// SpotRow is one preemption intensity.
type SpotRow struct {
	Label       string
	Cost        Stat
	JCT         Stat
	Preemptions float64 // mean per run
}

// Spot runs the sweep.
func Spot(cfg Config) (*SpotResult, error) {
	cfg = cfg.withDefaults()
	shaSpec := spec.MustSHA(16, 1, 30, 3)
	if cfg.Fast {
		shaSpec = spec.MustSHA(8, 1, 9, 3)
	}
	type point struct {
		label   string
		market  cloud.Market
		preempt float64
	}
	points := []point{
		{"on-demand", cloud.OnDemand, 0},
		{"spot, stable", cloud.Spot, 0},
		{"spot, preempt 20m", cloud.Spot, 1200},
		{"spot, preempt 10m", cloud.Spot, 600},
		{"spot, preempt 5m", cloud.Spot, 300},
	}
	if cfg.Fast {
		points = points[:3]
	}
	res := &SpotResult{}
	for _, pt := range points {
		var costs, jcts, preempts []float64
		for s := 0; s < cfg.Seeds; s++ {
			cp := sim.DefaultCloudProfile()
			cp.Pricing.Market = pt.market
			cp.DatasetGB = model.CIFAR10.SizeGB
			cp.Overheads = cloud.Overheads{
				QueueDelay:  stats.Deterministic{Value: 5},
				InitLatency: stats.Deterministic{Value: 15},
			}
			exp := &core.Experiment{
				Model:          model.ResNet101(),
				Space:          searchspace.DefaultVisionSpace(),
				Spec:           shaSpec,
				Cloud:          cp,
				Deadline:       25 * time.Minute,
				Policy:         core.PolicyRubberBand,
				Seed:           cfg.Seed + 900 + uint64(s)*1000,
				Samples:        cfg.Samples,
				RestoreSeconds: 5,
				Faults:         cloud.FaultModel{PreemptionMeanSeconds: pt.preempt},
			}
			out, err := exp.Run()
			if err != nil {
				return nil, fmt.Errorf("spot %s: %w", pt.label, err)
			}
			costs = append(costs, out.Actual.Cost)
			jcts = append(jcts, out.Actual.JCT)
			preempts = append(preempts, float64(out.Actual.Preemptions))
		}
		row := SpotRow{Label: pt.label}
		row.Cost.Mean, row.Cost.Std = stats.MeanStd(costs)
		row.JCT.Mean, row.JCT.Std = stats.MeanStd(jcts)
		row.Preemptions, _ = stats.MeanStd(preempts)
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// String renders the sweep.
func (r *SpotResult) render() *table {
	t := &table{
		title:  "Spot-market extension: RubberBand on preemptible capacity",
		header: []string{"capacity", "cost ($)", "JCT (s)", "preemptions/run"},
	}
	for _, row := range r.Rows {
		t.add(row.Label,
			meanStd(row.Cost.Mean, row.Cost.Std),
			meanStd(row.JCT.Mean, row.JCT.Std),
			fmt.Sprintf("%.1f", row.Preemptions))
	}
	return t
}

// String renders the result as an aligned text table.
func (r *ASHAResult) String() string { return r.render().String() }

// CSV renders the result as comma-separated values.
func (r *ASHAResult) CSV() string { return r.render().CSV() }

// String renders the result as an aligned text table.
func (r *SpotResult) String() string { return r.render().String() }

// CSV renders the result as comma-separated values.
func (r *SpotResult) CSV() string { return r.render().CSV() }
