package experiments

import (
	"fmt"
	"math"
	"time"

	"repro/internal/cloud"
	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/searchspace"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

// FidelityResult generalizes Table 2's sim-vs-real validation: across a
// population of randomized SHA workloads (varying trial counts, budgets,
// models and plans), it reports the distribution of relative error
// between the DAG-model prediction and the executed outcome, for both JCT
// and cost. Expected shape: median error of a few percent, tails bounded
// — the property that justifies planning offline from the simulator.
type FidelityResult struct {
	Workloads int
	JCTErr    ErrSummary
	CostErr   ErrSummary
}

// ErrSummary holds percentiles of absolute relative error (fractions).
type ErrSummary struct {
	P50, P90, Max float64
}

// Fidelity runs the randomized validation.
func Fidelity(cfg Config) (*FidelityResult, error) {
	cfg = cfg.withDefaults()
	workloads := 12
	if cfg.Fast {
		workloads = 4
	}
	rng := stats.NewRNG(cfg.Seed + 4000)
	models := []*model.Model{model.ResNet101(), model.ResNet152(), model.BERT()}

	var jctErrs, costErrs []float64
	for w := 0; w < workloads; w++ {
		m := models[w%len(models)]
		n := []int{8, 16, 32}[rng.Intn(3)]
		maxR := []int{12, 20, 30}[rng.Intn(3)]
		eta := []int{2, 3}[rng.Intn(2)]
		s, err := spec.SHA(spec.SHAParams{N: n, R: 1, MaxR: maxR, Eta: eta})
		if err != nil {
			return nil, err
		}
		space := searchspace.DefaultVisionSpace()
		if m.Name == "bert" {
			space = searchspace.DefaultNLPSpace()
		}
		cp := sim.DefaultCloudProfile()
		cp.DatasetGB = m.Dataset.SizeGB
		cp.Overheads = cloud.Overheads{
			QueueDelay:  stats.Exponential{MeanValue: 5},
			InitLatency: stats.Deterministic{Value: 15},
		}
		e := &core.Experiment{
			Model:          m,
			Space:          space,
			Spec:           s,
			Cloud:          cp,
			Deadline:       45 * time.Minute,
			Policy:         core.PolicyRubberBand,
			Seed:           cfg.Seed + uint64(w)*101,
			Samples:        cfg.Samples,
			MaxGPUs:        64,
			RestoreSeconds: 2,
		}
		res, err := e.Run()
		if err != nil {
			return nil, fmt.Errorf("fidelity workload %d (%s, %v): %w", w, m.Name, s, err)
		}
		jctErrs = append(jctErrs, math.Abs(res.Actual.JCT-res.Predicted.JCT)/res.Predicted.JCT)
		costErrs = append(costErrs, math.Abs(res.Actual.Cost-res.Predicted.Cost)/res.Predicted.Cost)
	}

	summarize := func(xs []float64) ErrSummary {
		s := stats.Summarize(xs)
		return ErrSummary{P50: s.P50, P90: s.P90, Max: s.Max}
	}
	return &FidelityResult{
		Workloads: workloads,
		JCTErr:    summarize(jctErrs),
		CostErr:   summarize(costErrs),
	}, nil
}

// render builds the fidelity table.
func (r *FidelityResult) render() *table {
	t := &table{
		title:  fmt.Sprintf("Simulation fidelity across %d randomized workloads (|sim − real| / sim)", r.Workloads),
		header: []string{"metric", "p50", "p90", "max"},
	}
	pct := func(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }
	t.add("JCT error", pct(r.JCTErr.P50), pct(r.JCTErr.P90), pct(r.JCTErr.Max))
	t.add("cost error", pct(r.CostErr.P50), pct(r.CostErr.P90), pct(r.CostErr.Max))
	return t
}

// String renders the result as an aligned text table.
func (r *FidelityResult) String() string { return r.render().String() }

// CSV renders the result as comma-separated values.
func (r *FidelityResult) CSV() string { return r.render().CSV() }
