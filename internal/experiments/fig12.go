package experiments

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/spec"
)

// Fig12Result holds the initialization-latency sweep of Figure 12:
// simulated cost of SHA(512, 4, 4096) over ResNet-50 (12 s/iteration at
// batch 2048) under per-instance billing, across deadlines from 90 to 160
// minutes, at instance initialization latencies of 1, 10 and 100 s.
// Expected shape: the elastic policy's advantage is largest at the
// tightest deadlines and shrinks as the deadline relaxes; growing the
// initialization latency erodes (but does not invert) the advantage,
// since scale-ups price in the overhead.
type Fig12Result struct {
	InitLatencies []float64
	Deadlines     []float64 // seconds
	// Cost[init][policy][i] is the predicted cost at Deadlines[i];
	// init is formatted as "1s", "10s", "100s".
	Cost map[string]map[string][]float64
}

// Fig12 runs the initialization-latency sweep.
func Fig12(cfg Config) (*Fig12Result, error) {
	cfg = cfg.withDefaults()
	inits := []float64{1, 10, 100}
	deadlines := []float64{90 * 60, 110 * 60, 130 * 60, 160 * 60}
	n, maxR := 512, 4096
	maxGPUs := 1024
	if cfg.Fast {
		inits = []float64{1, 100}
		deadlines = []float64{1800, 3600}
		n, maxR = 64, 508
		maxGPUs = 128
	}
	// §6.1.4: ResNet-50 with batch 2048, mean iteration latency 12 s.
	m := model.ResNet50()
	m.BaseBatch = 2048
	m.BaseIterSeconds = 12
	m.IterNoiseStd = 1

	res := &Fig12Result{InitLatencies: inits, Deadlines: deadlines, Cost: make(map[string]map[string][]float64)}
	for ii, initLat := range inits {
		key := fmt.Sprintf("%gs", initLat)
		res.Cost[key] = map[string][]float64{"static": nil, "elastic": nil}
		for di, deadline := range deadlines {
			w := workloadFig12(cfg, m, n, maxR, initLat, deadline, maxGPUs, uint64(ii*16+di))
			static, elastic, err := w.policyCosts()
			if err != nil {
				return nil, fmt.Errorf("fig12 init=%v deadline=%v: %w", initLat, deadline, err)
			}
			res.Cost[key]["static"] = append(res.Cost[key]["static"], static.Estimate.Cost)
			res.Cost[key]["elastic"] = append(res.Cost[key]["elastic"], elastic.Estimate.Cost)
		}
	}
	return res, nil
}

func workloadFig12(cfg Config, m *model.Model, n, maxR int, initLat, deadline float64, maxGPUs int, seedOff uint64) workload {
	mm := *m
	return workload{
		spec:  spec.MustSHA(n, 4, maxR, 2),
		model: &mm,
		batch: mm.BaseBatch,
		// The paper ran this sweep on p3.8xlarge; with our calibrated
		// cross-node penalty a 512-trial job cannot reach the 90-minute
		// deadline on 4-GPU nodes (the achievable speedup saturates), so
		// we use the 8-GPU p3.16xlarge tier, which halves node
		// boundaries and restores feasibility. See EXPERIMENTS.md.
		instance: "p3.16xlarge",
		billing:  0, // per-instance
		queue:    5,
		initLat:  initLat,
		deadline: deadline,
		maxGPUs:  maxGPUs,
		samples:  cfg.Samples,
		seed:     cfg.Seed + 64 + seedOff,
	}
}

// String renders the three panels.
func (r *Fig12Result) render() *table {
	t := &table{title: "Figure 12: simulated cost ($) vs deadline at varying init latency (per-instance billing)"}
	t.header = []string{"init", "policy"}
	for _, d := range r.Deadlines {
		t.header = append(t.header, fmt.Sprintf("%dm", int(d/60)))
	}
	for _, init := range r.InitLatencies {
		key := fmt.Sprintf("%gs", init)
		for _, policy := range []string{"static", "elastic"} {
			row := []string{key, policy}
			for _, c := range r.Cost[key][policy] {
				row = append(row, fmt.Sprintf("%.2f", c))
			}
			t.add(row...)
		}
	}
	return t
}

// String renders the result as an aligned text table.
func (r *Fig12Result) String() string { return r.render().String() }

// CSV renders the result as comma-separated values.
func (r *Fig12Result) CSV() string { return r.render().CSV() }
