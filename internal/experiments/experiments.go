// Package experiments reproduces every table and figure of the paper's
// evaluation (§6). Each experiment is a function from a Config to a
// renderable result; the cmd/experiments binary and the repository's
// benchmark harness both drive these functions, so the printed rows and
// the benchmarked code paths are identical.
//
// Absolute numbers differ from the paper — the substrate is a simulator,
// not a 2021 EC2 testbed — but each result type's comment states the
// qualitative shape the paper reports, and the tests in this package
// assert those shapes hold.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Config tunes experiment scale.
type Config struct {
	// Seed is the base random seed; multi-seed experiments use
	// Seed, Seed+1, ...
	Seed uint64
	// Seeds is the number of repetitions for mean ± std rows (default 3,
	// matching the paper).
	Seeds int
	// Samples is the simulator Monte-Carlo sample count (default 20).
	Samples int
	// Fast shrinks sweeps for tests and smoke runs: fewer sweep points
	// and smaller jobs, same code paths.
	Fast bool
}

func (c Config) withDefaults() Config {
	if c.Seeds <= 0 {
		c.Seeds = 3
	}
	if c.Samples <= 0 {
		c.Samples = 20
	}
	return c
}

// Runner is one registered experiment.
type Runner struct {
	// Name is the registry key, e.g. "fig9" or "table2".
	Name string
	// Description summarizes what the paper's artifact shows.
	Description string
	// Run executes the experiment and returns a renderable result.
	Run func(Config) (fmt.Stringer, error)
}

// Registry returns all experiments in presentation order.
func Registry() []Runner {
	return []Runner{
		{"fig4", "Sub-linear scaling of DL models with increasing GPUs", func(c Config) (fmt.Stringer, error) { return Fig4(c) }},
		{"fig9", "Impact of stragglers on cost under per-instance vs per-function billing", func(c Config) (fmt.Stringer, error) { return Fig9(c) }},
		{"fig10", "Impact of data I/O pricing for small and large datasets", func(c Config) (fmt.Stringer, error) { return Fig10(c) }},
		{"fig11", "Cost vs number of trials (job size)", func(c Config) (fmt.Stringer, error) { return Fig11(c) }},
		{"fig12", "Cost vs deadline at 1s/10s/100s instance initialization latency", func(c Config) (fmt.Stringer, error) { return Fig12(c) }},
		{"table1", "Placement controller ablation: sample throughput", func(c Config) (fmt.Stringer, error) { return Table1(c) }},
		{"table2", "End-to-end cost across time constraints (static/naive/RubberBand)", func(c Config) (fmt.Stringer, error) { return Table2(c) }},
		{"table3", "Example elastic cluster schedule for the 20-minute plan", func(c Config) (fmt.Stringer, error) { return Table3(c) }},
		{"table4", "Cost across DL models (fixed vs RubberBand)", func(c Config) (fmt.Stringer, error) { return Table4(c) }},
		{"ablation", "Planner design-choice ablations (samples, warm starts, step types)", func(c Config) (fmt.Stringer, error) { return Ablation(c) }},
		{"asha", "Extension: ASHA (fixed-cluster prior work) vs RubberBand", func(c Config) (fmt.Stringer, error) { return ASHA(c) }},
		{"spot", "Extension: spot-market preemption sweep with checkpoint recovery", func(c Config) (fmt.Stringer, error) { return Spot(c) }},
		{"fidelity", "Sim-vs-real error distribution across randomized workloads", func(c Config) (fmt.Stringer, error) { return Fidelity(c) }},
		{"instances", "Extension: worker instance-type selection across deadlines", func(c Config) (fmt.Stringer, error) { return Instances(c) }},
	}
}

// Lookup finds a registered experiment by name.
func Lookup(name string) (Runner, error) {
	for _, r := range Registry() {
		if r.Name == name {
			return r, nil
		}
	}
	var names []string
	for _, r := range Registry() {
		names = append(names, r.Name)
	}
	sort.Strings(names)
	return Runner{}, fmt.Errorf("experiments: unknown experiment %q (have %s)", name, strings.Join(names, ", "))
}

// table renders rows of columns with aligned padding — the shared
// formatter for every experiment's String method.
type table struct {
	title  string
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteString("\n")
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if pad := widths[i] - len(c); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		b.WriteString("\n")
	}
	line(t.header)
	total := len(t.header) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.rows {
		line(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row first,
// commas in cells replaced by semicolons), for external plotting.
func (t *table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(strings.ReplaceAll(c, ",", ";"))
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSVer is implemented by experiment results that can render as CSV.
type CSVer interface{ CSV() string }

// meanStd formats "12.34 ± 0.56".
func meanStd(mean, std float64) string {
	return fmt.Sprintf("%.2f ± %.2f", mean, std)
}

// mmss formats seconds as mm:ss.
func mmss(seconds float64) string {
	m := int(seconds) / 60
	s := int(seconds) % 60
	return fmt.Sprintf("%02d:%02d", m, s)
}
