package experiments

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/spec"
)

// Fig11Result holds the job-size sweep of Figure 11: simulated cost of
// SHA(k, 4, 508) as the trial count k grows, under a 20-minute deadline,
// for per-instance (a) and per-function (b) billing. Expected shape: the
// elastic policy wins at every job size under both billing models, and
// the absolute gap grows with the trial count (more early parallelism to
// exploit).
type Fig11Result struct {
	Trials []int
	// Cost[billing][policy][i] is the predicted cost at Trials[i].
	Cost map[string]map[string][]float64
}

// Fig11 runs the job-size sweep.
func Fig11(cfg Config) (*Fig11Result, error) {
	cfg = cfg.withDefaults()
	trials := []int{16, 32, 64, 128}
	if cfg.Fast {
		trials = []int{16, 32}
	}
	res := &Fig11Result{Trials: trials, Cost: make(map[string]map[string][]float64)}
	for _, billing := range []cloud.BillingModel{cloud.PerInstance, cloud.PerFunction} {
		res.Cost[billing.String()] = map[string][]float64{"static": nil, "elastic": nil}
		for i, k := range trials {
			w := fig9Workload(cfg, uint64(32+i))
			w.billing = billing
			w.spec = spec.MustSHA(k, 4, 508, 2)
			if cfg.Fast {
				w.spec = spec.MustSHA(k, 4, 64, 2)
			}
			w.queue = 5
			w.initLat = 15
			w.deadline = 1800 // the sweep needs feasibility at k=128
			w.maxGPUs = 2 * k
			if w.maxGPUs < 64 {
				w.maxGPUs = 64
			}
			static, elastic, err := w.policyCosts()
			if err != nil {
				return nil, fmt.Errorf("fig11 k=%d billing=%v: %w", k, billing, err)
			}
			res.Cost[billing.String()]["static"] = append(res.Cost[billing.String()]["static"], static.Estimate.Cost)
			res.Cost[billing.String()]["elastic"] = append(res.Cost[billing.String()]["elastic"], elastic.Estimate.Cost)
		}
	}
	return res, nil
}

// String renders both panels.
func (r *Fig11Result) render() *table {
	t := &table{title: "Figure 11: simulated cost ($) vs number of trials"}
	t.header = []string{"billing", "policy"}
	for _, k := range r.Trials {
		t.header = append(t.header, fmt.Sprintf("n=%d", k))
	}
	for _, billing := range []string{"per-instance", "per-function"} {
		for _, policy := range []string{"static", "elastic"} {
			row := []string{billing, policy}
			for _, c := range r.Cost[billing][policy] {
				row = append(row, fmt.Sprintf("%.2f", c))
			}
			t.add(row...)
		}
	}
	return t
}

// String renders the result as an aligned text table.
func (r *Fig11Result) String() string { return r.render().String() }

// CSV renders the result as comma-separated values.
func (r *Fig11Result) CSV() string { return r.render().CSV() }
