package experiments

import (
	"fmt"

	"repro/internal/model"
)

// Fig4Result holds the normalized-throughput scaling curves of Figure 4.
// Expected shape: all models sub-linear, BERT worst (communication-bound
// fine-tuning), throughput still monotonically increasing.
type Fig4Result struct {
	GPUs []int
	// Throughput[model][i] is speedup relative to 1 GPU at GPUs[i],
	// with workers co-located on the minimal node set of 8-GPU machines.
	Throughput map[string][]float64
	Models     []string
}

// Fig4 computes the scaling curves for every zoo model.
func Fig4(cfg Config) (*Fig4Result, error) {
	cfg = cfg.withDefaults()
	gpus := []int{1, 2, 4, 8, 16}
	if cfg.Fast {
		gpus = []int{1, 2, 4}
	}
	res := &Fig4Result{GPUs: gpus, Throughput: make(map[string][]float64)}
	const gpn = 8 // p3.16xlarge nodes
	for _, m := range model.Zoo() {
		curve := make([]float64, len(gpus))
		for i, g := range gpus {
			curve[i] = m.Scaling.Speedup(g, model.MinNodes(g, gpn))
		}
		res.Models = append(res.Models, m.Name)
		res.Throughput[m.Name] = curve
	}
	return res, nil
}

// String renders the curves as a table of normalized throughput.
func (r *Fig4Result) render() *table {
	t := &table{title: "Figure 4: normalized training throughput vs #GPUs (1 GPU = 1.0)"}
	t.header = []string{"model"}
	for _, g := range r.GPUs {
		t.header = append(t.header, fmt.Sprintf("%dxGPU", g))
	}
	for _, name := range r.Models {
		row := []string{name}
		for _, v := range r.Throughput[name] {
			row = append(row, fmt.Sprintf("%.2f", v))
		}
		t.add(row...)
	}
	return t
}

// String renders the result as an aligned text table.
func (r *Fig4Result) String() string { return r.render().String() }

// CSV renders the result as comma-separated values.
func (r *Fig4Result) CSV() string { return r.render().CSV() }
