package experiments

import (
	"strings"
	"testing"

	"repro/internal/cloud"
)

// fastCfg keeps unit tests quick while exercising the exact experiment
// code paths; the cmd/experiments binary runs the full-size versions.
func fastCfg() Config {
	return Config{Seed: 1, Seeds: 2, Samples: 5, Fast: true}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"fig4", "fig9", "fig10", "fig11", "fig12",
		"table1", "table2", "table3", "table4", "ablation", "asha", "spot", "fidelity", "instances"}
	reg := Registry()
	if len(reg) != len(want) {
		t.Fatalf("registry has %d entries", len(reg))
	}
	for i, name := range want {
		if reg[i].Name != name {
			t.Errorf("registry[%d] = %q, want %q", i, reg[i].Name, name)
		}
		if reg[i].Description == "" || reg[i].Run == nil {
			t.Errorf("registry[%d] incomplete", i)
		}
	}
	if _, err := Lookup("fig9"); err != nil {
		t.Error(err)
	}
	if _, err := Lookup("nope"); err == nil {
		t.Error("unknown experiment found")
	}
}

func TestTableRendering(t *testing.T) {
	tb := &table{title: "T", header: []string{"a", "bb"}}
	tb.add("x", "y")
	out := tb.String()
	if !strings.Contains(out, "T\n") || !strings.Contains(out, "a") || !strings.Contains(out, "x") {
		t.Fatalf("render: %q", out)
	}
	if mmss(125) != "02:05" {
		t.Errorf("mmss = %q", mmss(125))
	}
}

func TestFig4Shape(t *testing.T) {
	r, err := Fig4(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for name, curve := range r.Throughput {
		for i := range curve {
			if curve[i] > float64(r.GPUs[i]) {
				t.Errorf("%s super-linear at %d GPUs: %v", name, r.GPUs[i], curve[i])
			}
			if i > 0 && curve[i] <= curve[i-1] {
				t.Errorf("%s not increasing at %d GPUs", name, r.GPUs[i])
			}
		}
	}
	// BERT scales worst at the largest point (Figure 4's ordering).
	last := len(r.GPUs) - 1
	for name, curve := range r.Throughput {
		if name == "bert" {
			continue
		}
		if r.Throughput["bert"][last] >= curve[last] {
			t.Errorf("bert (%v) should scale worse than %s (%v)",
				r.Throughput["bert"][last], name, curve[last])
		}
	}
	if !strings.Contains(r.String(), "Figure 4") {
		t.Error("missing title")
	}
}

func TestFig9Shape(t *testing.T) {
	r, err := Fig9(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, policy := range []string{"static", "elastic"} {
		pi := r.Cost[policy]["per-instance"]
		pf := r.Cost[policy]["per-function"]
		if len(pi) != len(r.Sigmas) || len(pf) != len(r.Sigmas) {
			t.Fatalf("%s: missing points", policy)
		}
		last := len(r.Sigmas) - 1
		// Stragglers raise per-instance cost...
		if pi[last] <= pi[0] {
			t.Errorf("%s per-instance cost flat under stragglers: %v", policy, pi)
		}
		// ...and per-instance is costlier than per-function at high σ.
		if pi[last] <= pf[last] {
			t.Errorf("%s at σ=max: per-instance %v not above per-function %v",
				policy, pi[last], pf[last])
		}
	}
	// Per-function cost is insensitive to stragglers relative to
	// per-instance: its relative growth must be smaller.
	for _, policy := range []string{"static", "elastic"} {
		pi := r.Cost[policy]["per-instance"]
		pf := r.Cost[policy]["per-function"]
		last := len(r.Sigmas) - 1
		if pf[last]/pf[0] >= pi[last]/pi[0] {
			t.Errorf("%s: per-function growth %v not below per-instance growth %v",
				policy, pf[last]/pf[0], pi[last]/pi[0])
		}
	}
	_ = r.String()
}

func TestFig10Shape(t *testing.T) {
	r, err := Fig10(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	last := len(r.Prices) - 1
	for _, ds := range []string{"imagenet", "cifar10"} {
		st, el := r.Cost[ds]["static"], r.Cost[ds]["elastic"]
		for i := range r.Prices {
			// The elastic policy never does worse (§6.1.2).
			if el[i] > st[i]*1.02 {
				t.Errorf("%s @$%.2f: elastic %v above static %v", ds, r.Prices[i], el[i], st[i])
			}
		}
		// Costs rise with data price for the large dataset.
		if ds == "imagenet" && st[last] <= st[0] {
			t.Errorf("imagenet static cost flat across data prices: %v", st)
		}
	}
	// The relative elastic advantage shrinks when I/O dominates
	// (ImageNet at the highest price) compared to the free case.
	adv := func(ds string, i int) float64 {
		return (r.Cost[ds]["static"][i] - r.Cost[ds]["elastic"][i]) / r.Cost[ds]["static"][i]
	}
	if adv("imagenet", last) >= adv("imagenet", 0) {
		t.Errorf("imagenet advantage grew with data price: %v vs %v",
			adv("imagenet", last), adv("imagenet", 0))
	}
	_ = r.String()
}

func TestFig11Shape(t *testing.T) {
	r, err := Fig11(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for _, billing := range []string{"per-instance", "per-function"} {
		st, el := r.Cost[billing]["static"], r.Cost[billing]["elastic"]
		for i := range r.Trials {
			if el[i] > st[i]*1.02 {
				t.Errorf("%s n=%d: elastic %v above static %v", billing, r.Trials[i], el[i], st[i])
			}
		}
		// Cost grows with job size.
		last := len(r.Trials) - 1
		if st[last] <= st[0] {
			t.Errorf("%s static cost flat across job sizes: %v", billing, st)
		}
	}
	_ = r.String()
}

func TestFig12Shape(t *testing.T) {
	r, err := Fig12(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	for key, byPolicy := range r.Cost {
		st, el := byPolicy["static"], byPolicy["elastic"]
		for i := range r.Deadlines {
			if el[i] > st[i]*1.02 {
				t.Errorf("init=%s deadline=%v: elastic %v above static %v",
					key, r.Deadlines[i], el[i], st[i])
			}
		}
	}
	_ = r.String()
}

func TestTable1Shape(t *testing.T) {
	r, err := Table1(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Placed) != 3 || len(r.Scattered) != 3 {
		t.Fatalf("rows = %d/%d", len(r.Placed), len(r.Scattered))
	}
	// At 1 GPU placement is irrelevant; throughputs should be close.
	if r.Placed[0].Mean <= 0 || r.Scattered[0].Mean <= 0 {
		t.Fatal("zero throughput")
	}
	// With placement, 4-GPU throughput scales ~3.7x; without, ~1.8x
	// (Table 1's headline).
	placedSpeedup := r.Placed[2].Mean / r.Placed[0].Mean
	scatteredSpeedup := r.Scattered[2].Mean / r.Scattered[0].Mean
	if placedSpeedup < 3.0 {
		t.Errorf("placed speedup %v, want >= 3", placedSpeedup)
	}
	if scatteredSpeedup > 2.5 {
		t.Errorf("scattered speedup %v, want <= 2.5", scatteredSpeedup)
	}
	if scatteredSpeedup >= placedSpeedup {
		t.Error("scattering did not hurt scaling")
	}
	_ = r.String()
}

func TestTable2Shape(t *testing.T) {
	r, err := Table2(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[string]Table2Row{}
	for _, row := range r.Rows {
		byPolicy[row.Policy.String()] = row
	}
	static, rb := byPolicy["Static"], byPolicy["RubberBand"]
	// RubberBand's simulated cost never exceeds static's (§4.3
	// guarantee).
	if rb.CostSim.Mean > static.CostSim.Mean*1.01 {
		t.Errorf("RubberBand sim cost %v above static %v", rb.CostSim.Mean, static.CostSim.Mean)
	}
	// Real execution tracks simulation within 20%.
	for _, row := range []Table2Row{static, rb} {
		if row.RealSkipped {
			continue
		}
		if d := abs(row.JCTReal.Mean-row.JCTSim.Mean) / row.JCTSim.Mean; d > 0.2 {
			t.Errorf("%v: JCT sim/real divergence %.0f%%", row.Policy, d*100)
		}
		if d := abs(row.CostReal.Mean-row.CostSim.Mean) / row.CostSim.Mean; d > 0.25 {
			t.Errorf("%v: cost sim/real divergence %.0f%%", row.Policy, d*100)
		}
	}
	out := r.String()
	if !strings.Contains(out, "RubberBand") || !strings.Contains(out, "Static") {
		t.Error("table missing policies")
	}
}

func TestTable3Shape(t *testing.T) {
	r, err := Table3(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) == 0 {
		t.Fatal("no schedule rows")
	}
	for i := 1; i < len(r.Rows); i++ {
		if r.Rows[i].Trials > r.Rows[i-1].Trials {
			t.Errorf("trials grew at stage %d", i)
		}
		if r.Rows[i].EpochStart != r.Rows[i-1].EpochEnd {
			t.Errorf("epoch ranges not contiguous at stage %d", i)
		}
	}
	_ = r.String()
}

func TestTable4Shape(t *testing.T) {
	r, err := Table4(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	for _, row := range r.Rows {
		// RubberBand never materially worse than fixed (§6.3.2).
		if row.Rubber.Mean > row.Fixed.Mean*1.05 {
			t.Errorf("%s: RubberBand %v above fixed %v", row.Model, row.Rubber.Mean, row.Fixed.Mean)
		}
	}
	_ = r.String()
}

func TestAblationShape(t *testing.T) {
	r, err := Ablation(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	byVariant := map[string]AblationRow{}
	for _, row := range r.Rows {
		byVariant[row.Variant] = row
	}
	// Instance-boundary candidates matter under per-instance billing.
	on, off := byVariant["instance-step=on"], byVariant["instance-step=off"]
	if on.Cost > off.Cost*1.01 {
		t.Errorf("instance-step on (%v) worse than off (%v)", on.Cost, off.Cost)
	}
	// Multi-warm-start never loses to single.
	multi, single := byVariant["warm-start={1,2,3}"], byVariant["warm-start={1}"]
	if multi.Cost > single.Cost*1.01 {
		t.Errorf("multi warm start (%v) worse than single (%v)", multi.Cost, single.Cost)
	}
	_ = r.String()
}

func TestFig9StaticHelper(t *testing.T) {
	res, err := fig9Static(fastCfg(), 4, cloud.PerInstance)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Plan.IsStatic() {
		t.Errorf("plan %v not static", res.Plan)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestASHAShape(t *testing.T) {
	r, err := ASHA(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	rb, as := r.Rows[0], r.Rows[1]
	// The fixed ASHA cluster never shrinks: under a time constraint it
	// spends at least as much as RubberBand.
	if as.Cost.Mean < rb.Cost.Mean*0.95 {
		t.Errorf("ASHA cost %v below RubberBand %v", as.Cost.Mean, rb.Cost.Mean)
	}
	// ASHA samples far more configurations but trains few to the full
	// budget.
	if as.SampledConfigs <= rb.SampledConfigs {
		t.Errorf("ASHA sampled %v configs, RubberBand %v", as.SampledConfigs, rb.SampledConfigs)
	}
	_ = r.String()
}

func TestSpotShape(t *testing.T) {
	r, err := Spot(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) < 3 {
		t.Fatalf("rows = %d", len(r.Rows))
	}
	onDemand, stable := r.Rows[0], r.Rows[1]
	// Stable spot capacity is strictly cheaper than on-demand.
	if stable.Cost.Mean >= onDemand.Cost.Mean {
		t.Errorf("stable spot %v not cheaper than on-demand %v",
			stable.Cost.Mean, onDemand.Cost.Mean)
	}
	// JCT is unaffected when nothing is preempted.
	if stable.Preemptions != 0 && stable.JCT.Mean < onDemand.JCT.Mean {
		t.Errorf("inconsistent stable spot row: %+v", stable)
	}
	_ = r.String()
}

func TestFidelityShape(t *testing.T) {
	r, err := Fidelity(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if r.Workloads < 2 {
		t.Fatalf("workloads = %d", r.Workloads)
	}
	// The whole point of the DAG model: predictions track execution.
	if r.JCTErr.P50 > 0.10 {
		t.Errorf("median JCT error %.1f%% too high", r.JCTErr.P50*100)
	}
	if r.CostErr.P50 > 0.15 {
		t.Errorf("median cost error %.1f%% too high", r.CostErr.P50*100)
	}
	if r.JCTErr.Max > 0.5 || r.CostErr.Max > 0.5 {
		t.Errorf("pathological tail: %+v %+v", r.JCTErr, r.CostErr)
	}
	if r.JCTErr.P50 > r.JCTErr.P90 || r.JCTErr.P90 > r.JCTErr.Max {
		t.Errorf("percentiles not ordered: %+v", r.JCTErr)
	}
	_ = r.String()
	if r.CSV() == "" {
		t.Error("empty CSV")
	}
}

func TestInstancesShape(t *testing.T) {
	r, err := Instances(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != len(r.Deadlines) {
		t.Fatalf("rows = %d, deadlines = %d", len(r.Rows), len(r.Deadlines))
	}
	for di := range r.Deadlines {
		chosen := 0
		for _, row := range r.Rows[di] {
			if row.Chosen {
				chosen++
				if !row.Feasible {
					t.Errorf("chose infeasible type at deadline %v", r.Deadlines[di])
				}
				// The chosen type is the min-cost feasible one.
				for _, other := range r.Rows[di] {
					if other.Feasible && other.Cost < row.Cost-1e-9 {
						t.Errorf("deadline %v: %s ($%.2f) beats chosen %s ($%.2f)",
							r.Deadlines[di], other.Instance, other.Cost, row.Instance, row.Cost)
					}
				}
			}
		}
		if len(r.Rows[di]) > 0 && chosen != 1 {
			t.Errorf("deadline %v: %d chosen types", r.Deadlines[di], chosen)
		}
	}
	_ = r.String()
}
