package experiments

import (
	"fmt"

	"repro/internal/model"
)

// Fig10Result holds the data-I/O price sweep of Figure 10: total
// experiment cost for the static and elastic policies as ingress pricing
// grows from free to $0.16/GB, on a large dataset (ImageNet, 150 GB) and
// a small one (CIFAR-10, 150 MB). Expected shape: with ImageNet, I/O cost
// dominates at higher prices and the elastic advantage shrinks toward
// parity (but never inverts); with CIFAR-10, data cost is negligible and
// the elastic saving persists across the sweep.
type Fig10Result struct {
	Prices []float64 // $/GB
	// Cost[dataset][policy][i] is the predicted total cost at Prices[i].
	Cost map[string]map[string][]float64
}

// Fig10 runs the data-price sweep.
func Fig10(cfg Config) (*Fig10Result, error) {
	cfg = cfg.withDefaults()
	prices := []float64{0, 0.01, 0.02, 0.04, 0.08, 0.16}
	if cfg.Fast {
		prices = []float64{0, 0.16}
	}
	datasets := []model.Dataset{model.ImageNet, model.CIFAR10}
	res := &Fig10Result{Prices: prices, Cost: make(map[string]map[string][]float64)}
	for _, ds := range datasets {
		res.Cost[ds.Name] = map[string][]float64{"static": nil, "elastic": nil}
		for i, price := range prices {
			w := fig9Workload(cfg, uint64(16+i))
			w.dataPrice = price
			w.datasetGB = ds.SizeGB
			w.initLat = 15
			w.queue = 5
			static, elastic, err := w.policyCosts()
			if err != nil {
				return nil, fmt.Errorf("fig10 dataset=%s price=%v: %w", ds.Name, price, err)
			}
			res.Cost[ds.Name]["static"] = append(res.Cost[ds.Name]["static"], static.Estimate.Cost)
			res.Cost[ds.Name]["elastic"] = append(res.Cost[ds.Name]["elastic"], elastic.Estimate.Cost)
		}
	}
	return res, nil
}

// String renders both panels.
func (r *Fig10Result) render() *table {
	t := &table{title: "Figure 10: impact of data I/O pricing on total experiment cost ($)"}
	t.header = []string{"dataset", "policy"}
	for _, p := range r.Prices {
		t.header = append(t.header, fmt.Sprintf("$%.2f/GB", p))
	}
	for _, ds := range []string{"imagenet", "cifar10"} {
		for _, policy := range []string{"static", "elastic"} {
			row := []string{ds, policy}
			for _, c := range r.Cost[ds][policy] {
				row = append(row, fmt.Sprintf("%.2f", c))
			}
			t.add(row...)
		}
	}
	return t
}

// String renders the result as an aligned text table.
func (r *Fig10Result) String() string { return r.render().String() }

// CSV renders the result as comma-separated values.
func (r *Fig10Result) CSV() string { return r.render().CSV() }
