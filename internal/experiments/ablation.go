package experiments

import (
	"fmt"

	"repro/internal/planner"
)

// AblationResult reports planner design-choice ablations on the
// SHA(64, 4, 508) ResNet-50 workload at a 15-minute deadline:
//
//   - Monte-Carlo samples per plan evaluation (1 / 5 / 20 / 100): more
//     samples sharpen estimates; the chosen plan's cost should be stable
//     past a small count, validating the paper's "small by default"
//     setting.
//   - Warm-start multipliers ({1} vs {1,2,3}): multi-start can only help.
//   - Instance-boundary candidates (on vs off): under per-instance
//     billing, disabling them stalls the greedy descent on sub-instance
//     decrements, losing most of the elastic saving.
//   - Equation 1's JCT-normalized selection vs raw cost selection.
type AblationResult struct {
	Rows []AblationRow
}

// AblationRow is one planner variant's outcome.
type AblationRow struct {
	Variant string
	Cost    float64
	JCT     float64
	Plan    string
}

// Ablation runs the planner variants.
func Ablation(cfg Config) (*AblationResult, error) {
	cfg = cfg.withDefaults()
	base := func(seedOff uint64) workload {
		w := fig9Workload(cfg, 200+seedOff)
		w.deadline = 900
		w.queue = 5
		w.initLat = 15
		return w
	}

	res := &AblationResult{}
	addVariant := func(name string, mutate func(*planner.Planner), seedOff uint64) error {
		w := base(seedOff)
		p, err := w.planner()
		if err != nil {
			return err
		}
		if mutate != nil {
			mutate(p)
		}
		out, err := p.PlanElastic()
		if err != nil {
			return fmt.Errorf("ablation %s: %w", name, err)
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant: name,
			Cost:    out.Estimate.Cost,
			JCT:     out.Estimate.JCT,
			Plan:    out.Plan.String(),
		})
		return nil
	}

	samples := []int{1, 5, 20, 100}
	if cfg.Fast {
		samples = []int{1, 20}
	}
	for i, n := range samples {
		w := base(uint64(i))
		w.samples = n
		p, err := w.planner()
		if err != nil {
			return nil, err
		}
		out, err := p.PlanElastic()
		if err != nil {
			return nil, fmt.Errorf("ablation samples=%d: %w", n, err)
		}
		res.Rows = append(res.Rows, AblationRow{
			Variant: fmt.Sprintf("mc-samples=%d", n),
			Cost:    out.Estimate.Cost,
			JCT:     out.Estimate.JCT,
			Plan:    out.Plan.String(),
		})
	}
	if err := addVariant("warm-start={1}", func(p *planner.Planner) {
		p.WarmStartMultipliers = []int{1}
	}, 10); err != nil {
		return nil, err
	}
	if err := addVariant("warm-start={1,2,3}", nil, 10); err != nil {
		return nil, err
	}
	if err := addVariant("instance-step=off", func(p *planner.Planner) {
		p.DisableInstanceStep = true
	}, 11); err != nil {
		return nil, err
	}
	if err := addVariant("instance-step=on", nil, 11); err != nil {
		return nil, err
	}
	if err := addVariant("selection=raw-cost", func(p *planner.Planner) {
		p.RawCostSelection = true
	}, 12); err != nil {
		return nil, err
	}
	if err := addVariant("selection=eq1-normalized", nil, 12); err != nil {
		return nil, err
	}
	return res, nil
}

// String renders the ablation table.
func (r *AblationResult) render() *table {
	t := &table{
		title:  "Planner design-choice ablations (SHA(64,4,508), ResNet-50, 15-minute deadline)",
		header: []string{"variant", "predicted cost ($)", "predicted JCT (s)", "plan"},
	}
	for _, row := range r.Rows {
		t.add(row.Variant, fmt.Sprintf("%.2f", row.Cost), fmt.Sprintf("%.0f", row.JCT), row.Plan)
	}
	return t
}

// String renders the result as an aligned text table.
func (r *AblationResult) String() string { return r.render().String() }

// CSV renders the result as comma-separated values.
func (r *AblationResult) CSV() string { return r.render().CSV() }
