package experiments

import (
	"fmt"

	"repro/internal/cloud"
	"repro/internal/planner"
)

// Fig9Result holds the straggler sweep of Figure 9: simulated cost of
// SHA(64, 4, 508) over ResNet-50/p3.8xlarge as per-iteration latency σ
// grows from 1 to 10 s (μ = 4 s), under both billing models, for the
// static (a) and elastic (b) policies. Expected shape: per-instance cost
// rises sharply with σ (idle resources held at synchronization barriers)
// while per-function cost stays nearly flat; this holds for both
// policies.
type Fig9Result struct {
	Sigmas []float64
	// Cost[policy][billing][i] is the predicted cost at Sigmas[i];
	// policy ∈ {"static", "elastic"}, billing ∈ {"per-instance",
	// "per-function"}.
	Cost map[string]map[string][]float64
}

// Fig9 runs the straggler sweep.
func Fig9(cfg Config) (*Fig9Result, error) {
	cfg = cfg.withDefaults()
	sigmas := []float64{1, 2, 4, 6, 8, 10}
	if cfg.Fast {
		sigmas = []float64{1, 10}
	}
	res := &Fig9Result{
		Sigmas: sigmas,
		Cost: map[string]map[string][]float64{
			"static":  {"per-instance": nil, "per-function": nil},
			"elastic": {"per-instance": nil, "per-function": nil},
		},
	}
	for i, sigma := range sigmas {
		// Plans are compiled once under the conventional per-instance
		// model; the same plans are then priced under each billing
		// regime, isolating the meter's effect from plan adaptation —
		// the comparison Figure 9 draws.
		w := fig9Workload(cfg, uint64(i))
		w.initLat = 0 // §6.1.1: instance initialization fixed at 0 s
		w.model.IterNoiseStd = sigma
		static, elastic, err := w.policyCosts()
		if err != nil {
			return nil, fmt.Errorf("fig9 sigma=%v: %w", sigma, err)
		}
		for _, billing := range []cloud.BillingModel{cloud.PerInstance, cloud.PerFunction} {
			wb := w
			wb.billing = billing
			sm, err := wb.simulator()
			if err != nil {
				return nil, err
			}
			se, err := sm.Estimate(static.Plan)
			if err != nil {
				return nil, fmt.Errorf("fig9 sigma=%v static: %w", sigma, err)
			}
			ee, err := sm.Estimate(elastic.Plan)
			if err != nil {
				return nil, fmt.Errorf("fig9 sigma=%v elastic: %w", sigma, err)
			}
			res.Cost["static"][billing.String()] = append(res.Cost["static"][billing.String()], se.Cost)
			res.Cost["elastic"][billing.String()] = append(res.Cost["elastic"][billing.String()], ee.Cost)
		}
	}
	return res, nil
}

// String renders both panels.
func (r *Fig9Result) render() *table {
	t := &table{title: "Figure 9: impact of stragglers on simulated cost ($) under billing regimes"}
	t.header = []string{"policy", "billing"}
	for _, s := range r.Sigmas {
		t.header = append(t.header, fmt.Sprintf("σ=%g", s))
	}
	for _, policy := range []string{"static", "elastic"} {
		for _, billing := range []string{"per-instance", "per-function"} {
			row := []string{policy, billing}
			for _, c := range r.Cost[policy][billing] {
				row = append(row, fmt.Sprintf("%.2f", c))
			}
			t.add(row...)
		}
	}
	return t
}

// fig9Static is a helper for tests: the static result at one sigma.
func fig9Static(cfg Config, sigma float64, billing cloud.BillingModel) (planner.Result, error) {
	w := fig9Workload(cfg, 0)
	w.billing = billing
	w.initLat = 0
	w.model.IterNoiseStd = sigma
	p, err := w.planner()
	if err != nil {
		return planner.Result{}, err
	}
	return p.PlanStatic()
}

// String renders the result as an aligned text table.
func (r *Fig9Result) String() string { return r.render().String() }

// CSV renders the result as comma-separated values.
func (r *Fig9Result) CSV() string { return r.render().CSV() }
