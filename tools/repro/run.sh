#!/usr/bin/env sh
set -eu

# Reproducibility harness for the parallel Monte-Carlo planner/simulator.
# Usage:
#   sh tools/repro/run.sh                         # fast deterministic suite
#   GOMAXPROCS=8 sh tools/repro/run.sh            # same results, more cores
#   RB_RUN_REPEATABILITY=1 sh tools/repro/run.sh  # include heavy repeatability test
#   RB_RUN_BENCH=1 sh tools/repro/run.sh          # include speedup benchmarks
#
# Every test below asserts bit-identical output across worker counts and
# repeated runs, so the suite must pass unchanged at any GOMAXPROCS value.

export GOMAXPROCS=${GOMAXPROCS:-1}
export CGO_ENABLED=0

ROOT_DIR="$(CDPATH= cd -- "$(dirname -- "$0")/../.." && pwd)"
cd "$ROOT_DIR"

printf "== rbvet: determinism/purity invariants of the planning stack ==\n"
go run ./cmd/rbvet ./...

printf "\n== RNG stream derivation (golden values, independence) ==\n"
go test ./internal/stats -run "^(TestSplit|TestStream|TestHash64)" -count=1 -timeout=10m -v

printf "\n== Simulator determinism across worker counts ==\n"
go test ./internal/sim -run "^(TestEstimateDeterministic|TestEstimateIndependentOfCallOrder|TestBreakdownDeterministic|TestCriticalPathKindsDeterministic)" -count=1 -timeout=10m -v

printf "\n== Planner determinism and memo cache ==\n"
go test ./internal/planner -run "^(TestPlanDeterministicAcrossWorkers|TestPlanMinJCTDeterministicAcrossWorkers|TestMemoCache)" -count=1 -timeout=10m -v

printf "\n== Durable journal: codec goldens, corruption handling, crash-point recovery ==\n"
go test ./internal/journal -count=1 -timeout=10m
go test ./internal/harness -run "^(TestCrashPointSweepMem|TestSnapshotIntervalInvisible|TestResumeRefusesForeignJournal)$" -count=1 -timeout=10m -v

printf "\n== Multi-tenant control plane: arbiter differential, backpressure, cross-generation recovery ==\n"
go test ./internal/serve -run "^(TestSlackPolicyBeatsFIFOOnDeadlines|TestRunFleetDeterministic|TestServerBackpressure|TestServerCrashRecoveryAcrossGenerations)$" -count=1 -timeout=10m -v
go test ./internal/harness -run "^(TestArbitratedReplayBitIdentical|TestCheckFleetInvariantsCatchesViolations)$" -count=1 -timeout=10m -v

printf "\n== Race-detector pass over the concurrent packages ==\n"
# -race needs cgo; everything else stays CGO_ENABLED=0.
CGO_ENABLED=1 go test -race ./internal/sim ./internal/planner ./internal/stats ./internal/par -count=1 -timeout=20m

# Optional heavy tests
if [ "${RB_RUN_REPEATABILITY:-0}" = "1" ]; then
  printf "\n== Heavy repeatability test (500 samples, 16 workers, 5 reps) ==\n"
  RB_RUN_REPEATABILITY=1 go test ./internal/sim -run "^TestEstimateHeavyRepeatability$" -count=1 -timeout=20m -v
fi
if [ "${RB_RUN_BENCH:-0}" = "1" ]; then
  printf "\n== Speedup benchmarks ==\n"
  go test -run '^$' -bench 'PlanElastic100|SimEstimateWorkers' -benchtime 3s -benchmem .
fi

printf "\nAll requested checks completed.\n"
