// Package repro benchmarks the reproduction's experiment harness: one
// benchmark per paper table/figure (running the same code paths as
// cmd/experiments, at reduced sweep sizes so the suite stays fast) plus
// micro-benchmarks of the planner, simulator, placement controller and
// executor hot paths.
//
// Regenerate the full-size artifacts with:
//
//	go run ./cmd/experiments -run all
package repro

import (
	"fmt"
	"runtime"
	"testing"

	"repro/internal/cloud"
	"repro/internal/cluster"
	"repro/internal/experiments"
	"repro/internal/model"
	"repro/internal/placement"
	"repro/internal/planner"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/stats"
)

// benchCfg matches the experiment tests' fast configuration.
func benchCfg() experiments.Config {
	return experiments.Config{Seed: 1, Seeds: 2, Samples: 5, Fast: true}
}

// BenchmarkFig4Scaling regenerates Figure 4 (model scaling curves).
func BenchmarkFig4Scaling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig4(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig9Stragglers regenerates Figure 9 (straggler/billing sweep).
func BenchmarkFig9Stragglers(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig9(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig10DataPrice regenerates Figure 10 (data I/O price sweep).
func BenchmarkFig10DataPrice(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig10(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig11JobSize regenerates Figure 11 (trial-count sweep).
func BenchmarkFig11JobSize(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig11(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig12InitLatency regenerates Figure 12 (init-latency sweep).
func BenchmarkFig12InitLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fig12(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable1Placement regenerates Table 1 (placement ablation).
func BenchmarkTable1Placement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table1(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2EndToEnd regenerates Table 2 (deadline sweep, all three
// policies, planned and executed).
func BenchmarkTable2EndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table2(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Schedule regenerates Table 3 (the realized elastic
// schedule of the 20-minute plan).
func BenchmarkTable3Schedule(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table3(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable4Models regenerates Table 4 (cost across models).
func BenchmarkTable4Models(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Table4(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPlanner regenerates the planner design-choice
// ablations.
func BenchmarkAblationPlanner(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Ablation(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionASHA regenerates the ASHA-vs-RubberBand comparison.
func BenchmarkExtensionASHA(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.ASHA(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionSpot regenerates the spot-preemption sweep.
func BenchmarkExtensionSpot(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Spot(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFidelity regenerates the randomized sim-vs-real validation.
func BenchmarkFidelity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Fidelity(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkExtensionInstances regenerates the instance-type selection.
func BenchmarkExtensionInstances(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Instances(benchCfg()); err != nil {
			b.Fatal(err)
		}
	}
}

// --- micro-benchmarks of the hot paths ---

func benchSimulator(b *testing.B, samples int) *sim.Simulator {
	return benchSimulatorWorkers(b, samples, 0) // 0 = GOMAXPROCS
}

func benchSimulatorWorkers(b *testing.B, samples, workers int) *sim.Simulator {
	b.Helper()
	s := spec.MustSHA(64, 4, 508, 2)
	prof := sim.ModelTrainProfile{Model: model.ResNet50(), Batch: 512, GPUsPerNode: 4}
	cp := sim.DefaultCloudProfile()
	cp.Overheads = cloud.Overheads{
		QueueDelay:  stats.Deterministic{Value: 5},
		InitLatency: stats.Deterministic{Value: 15},
	}
	sm, err := sim.New(s, prof, cp, samples, stats.NewRNG(1), sim.WithWorkers(workers))
	if err != nil {
		b.Fatal(err)
	}
	return sm
}

// benchWorkerCounts returns the worker counts the parallel benchmarks
// sweep: serial, and GOMAXPROCS when it adds parallelism.
func benchWorkerCounts() []int {
	counts := []int{1}
	if n := runtime.GOMAXPROCS(0); n > 1 {
		counts = append(counts, n)
	}
	return counts
}

// BenchmarkSimEstimate measures one plan evaluation — the unit of work
// the greedy planner spends its budget on.
func BenchmarkSimEstimate(b *testing.B) {
	sm := benchSimulator(b, 20)
	plan := sim.Uniform(32, sm.Spec().NumStages())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sm.Estimate(plan); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDAGSample measures one Monte-Carlo draw over the execution
// DAG.
func BenchmarkDAGSample(b *testing.B) {
	sm := benchSimulator(b, 1)
	g, err := sm.BuildDAG(sim.Uniform(32, sm.Spec().NumStages()))
	if err != nil {
		b.Fatal(err)
	}
	rng := stats.NewRNG(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Sample(rng)
	}
}

// BenchmarkPlanStatic measures the warm-start enumeration.
func BenchmarkPlanStatic(b *testing.B) {
	p := &planner.Planner{Sim: benchSimulator(b, 5), Deadline: 900, MaxGPUs: 128}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PlanStatic(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanElastic measures a full greedy plan compilation
// (Algorithm 2 with multi-warm-start).
func BenchmarkPlanElastic(b *testing.B) {
	p := &planner.Planner{Sim: benchSimulator(b, 5), Deadline: 900, MaxGPUs: 128}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.PlanElastic(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimEstimateWorkers measures the Monte-Carlo fan-out at a
// planning-heavy sample count across worker counts; the estimate is
// bit-identical at every setting, only wall-clock changes.
func BenchmarkSimEstimateWorkers(b *testing.B) {
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("samples=200/workers=%d", w), func(b *testing.B) {
			sm := benchSimulatorWorkers(b, 200, w)
			plan := sim.Uniform(32, sm.Spec().NumStages())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sm.Estimate(plan); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlanElastic100 measures a full greedy compilation at
// samples=100 — the configuration the PR's speedup claim is recorded
// against. A fresh Planner per iteration keeps the memo cache scoped to
// one compilation, exactly as rbplan/rbsweep use it.
func BenchmarkPlanElastic100(b *testing.B) {
	for _, w := range benchWorkerCounts() {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			sm := benchSimulatorWorkers(b, 100, w)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := &planner.Planner{Sim: sm, Deadline: 900, MaxGPUs: 128, Workers: w}
				if _, err := p.PlanElastic(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// benchSimulatorMode is benchSimulatorWorkers with an explicit estimator
// mode.
func benchSimulatorMode(b *testing.B, samples, workers int, mode sim.EstimatorMode) *sim.Simulator {
	b.Helper()
	s := spec.MustSHA(64, 4, 508, 2)
	prof := sim.ModelTrainProfile{Model: model.ResNet50(), Batch: 512, GPUsPerNode: 4}
	cp := sim.DefaultCloudProfile()
	cp.Overheads = cloud.Overheads{
		QueueDelay:  stats.Deterministic{Value: 5},
		InitLatency: stats.Deterministic{Value: 15},
	}
	sm, err := sim.New(s, prof, cp, samples, stats.NewRNG(1), sim.WithWorkers(workers), sim.WithEstimator(mode))
	if err != nil {
		b.Fatal(err)
	}
	return sm
}

func benchEstimatorModes() []sim.EstimatorMode {
	return []sim.EstimatorMode{sim.EstimatorSegment, sim.EstimatorFull}
}

// BenchmarkPlanElastic100Estimator compares the estimator modes on the
// speedup-claim configuration (samples=100, workers=1, shared simulator).
// The segment mode's caches stay warm across iterations, mirroring how a
// long-lived simulator serves successive plan compilations.
func BenchmarkPlanElastic100Estimator(b *testing.B) {
	for _, mode := range benchEstimatorModes() {
		b.Run(fmt.Sprintf("estimator=%v", mode), func(b *testing.B) {
			sm := benchSimulatorMode(b, 100, 1, mode)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := &planner.Planner{Sim: sm, Deadline: 900, MaxGPUs: 128, Workers: 1}
				if _, err := p.PlanElastic(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlanElastic100Cold rebuilds the Simulator every iteration, so
// every segment is compiled and sampled from scratch — the honest
// cold-start cost of one plan compilation, with no cross-iteration cache
// reuse.
func BenchmarkPlanElastic100Cold(b *testing.B) {
	for _, mode := range benchEstimatorModes() {
		b.Run(fmt.Sprintf("estimator=%v", mode), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				sm := benchSimulatorMode(b, 100, 1, mode)
				p := &planner.Planner{Sim: sm, Deadline: 900, MaxGPUs: 128, Workers: 1}
				if _, err := p.PlanElastic(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPlacementUpdate measures one placement epoch: 32 trials
// reassigned across 16 nodes (Algorithm 3).
func BenchmarkPlacementUpdate(b *testing.B) {
	cnodes := make([]*cluster.Node, 16)
	for i := range cnodes {
		cnodes[i] = &cluster.Node{ID: cluster.NodeID(i), GPUs: 8}
	}
	allocs := make(map[placement.TrialID]int, 32)
	for i := 0; i < 32; i++ {
		allocs[placement.TrialID(i)] = 4
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := placement.NewController(8)
		if _, err := c.Update(allocs, cnodes); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistSample measures the straggler latency draw on the
// executor's per-iteration path.
func BenchmarkDistSample(b *testing.B) {
	m := model.ResNet50()
	d := m.IterLatencyDist(512, 4, 1)
	rng := stats.NewRNG(3)
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += d.Sample(rng)
	}
	_ = sink
}

// BenchmarkCriticalPath measures critical-path extraction from a sampled
// schedule.
func BenchmarkCriticalPath(b *testing.B) {
	sm := benchSimulator(b, 1)
	g, err := sm.BuildDAG(sim.Uniform(32, sm.Spec().NumStages()))
	if err != nil {
		b.Fatal(err)
	}
	timings, _ := g.Sample(stats.NewRNG(4))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if p := g.CriticalPath(timings); len(p) == 0 {
			b.Fatal("empty path")
		}
	}
}
